"""Replay benchmark (and chaos harness) for ``repro serve``.

Drives a real daemon subprocess over real sockets with thousands of
mixed warm/cold requests and records the serving profile the service
PR promises:

* **cold** -- every unique quick-preset point of the fig01 sweep,
  posted before any cache exists: the price of a simulation plus the
  HTTP round trip;
* **replay** -- >= 1000 requests drawn from that spec universe by a
  deterministic RNG over persistent keep-alive connections, the mix a
  result-serving daemon actually sees (mostly warm, occasional cold);
* **burst** -- one identical cold spec posted from many threads at
  once: the single-flight coalescing path under contention.

Every 200 body -- cold, warm, coalesced, with or without chaos -- is
asserted byte-identical to a serial in-process reference before any
number is reported, and the run ends with SIGTERM and asserts the
daemon drains with exit code 0.  ``--chaos`` additionally SIGKILLs
pool workers while a cold burst is in flight (the PR 6 chaos harness
aimed at the daemon): correctness assertions are identical.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --requests 2000 --chaos

Writes ``BENCH_service.json`` next to the repo's other benchmark
records.  Also collected by pytest when invoked explicitly; the test
wrapper runs a reduced request count and skips nothing correctness
related, it just does not gate on timing.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro import RunSpec                                  # noqa: E402
from repro.core.runner import simulate_spec                # noqa: E402
from repro.runspec import canonical_json                   # noqa: E402
from repro.service.app import result_payload               # noqa: E402

#: The replayed spec universe: the quick fig01 sweep (fft on the full
#: topology across every machine model and processor count).
MACHINES = ("target", "logp", "clogp")
PROCESSORS = (1, 4, 16)
DEFAULT_REQUESTS = 1200
BURST_WIDTH = 32


def spec_universe() -> List[Dict]:
    return [
        {"app": "fft", "machine": machine, "nprocs": nprocs,
         "preset": "quick"}
        for machine in MACHINES
        for nprocs in PROCESSORS
    ]


def reference_bodies(builds: List[Dict]) -> Dict[str, bytes]:
    """Serial in-process reference: digest -> exact servable bytes."""
    references = {}
    for build in builds:
        spec = RunSpec.build(**build)
        result = simulate_spec(spec)
        digest = spec.spec_digest()
        references[digest] = canonical_json(
            result_payload(digest, result)
        ).encode("utf-8")
    return references


# -- daemon subprocess ---------------------------------------------------------------


class DaemonProcess:
    """A ``repro serve`` subprocess plus the address it bound."""

    def __init__(self, cache_dir: str, jobs: int = 2,
                 extra_args: Optional[List[str]] = None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", "0", "--jobs", str(jobs),
             "--cache-dir", cache_dir,
             "--request-timeout-s", "120",
             *(extra_args or [])],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        line = self.proc.stdout.readline()
        if "listening on" not in line:
            self.proc.kill()
            raise RuntimeError(f"daemon failed to start: {line!r}")
        address = line.split("listening on ", 1)[1].split()[0]
        self.host, port = address.split(":")
        self.port = int(port)

    def worker_pids(self) -> List[int]:
        """The daemon's pool workers (direct children, via /proc)."""
        children = []
        for entry in os.listdir("/proc"):
            if not entry.isdigit():
                continue
            try:
                with open(f"/proc/{entry}/stat") as handle:
                    fields = handle.read().split()
            except OSError:  # noqa: PERF203 -- process raced away
                continue
            # stat field 4 is ppid (comm may contain spaces, but it is
            # parenthesised and pool workers are plain python).
            try:
                ppid = int(fields[3])
            except (IndexError, ValueError):  # noqa: PERF203
                continue
            if ppid == self.proc.pid:
                children.append(int(entry))
        return children

    def terminate_and_wait(self, timeout: float = 30.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise AssertionError(
                "daemon did not drain within the deadline after SIGTERM"
            )
        return self.proc.returncode


class Client:
    """One persistent keep-alive connection to the daemon."""

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self.conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def post(self, path: str, payload) -> Tuple[int, bytes, str]:
        body = json.dumps(payload).encode("utf-8")
        self.conn.request("POST", path, body=body,
                          headers={"Content-Type": "application/json"})
        response = self.conn.getresponse()
        data = response.read()
        return (response.status, data,
                response.getheader("x-repro-source", ""))

    def get_json(self, path: str):
        self.conn.request("GET", path)
        response = self.conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))

    def close(self):
        self.conn.close()


def percentile(samples: List[float], p: float) -> Optional[float]:
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      round(p / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def latency_summary(samples: List[float]) -> Dict:
    return {
        "count": len(samples),
        "p50_ms": None if not samples else round(
            percentile(samples, 50) * 1000, 3),
        "p99_ms": None if not samples else round(
            percentile(samples, 99) * 1000, 3),
        "max_ms": None if not samples else round(max(samples) * 1000, 3),
    }


# -- phases --------------------------------------------------------------------------


def run_cold_phase(client: Client, builds, references) -> Dict:
    latencies = []
    for build in builds:
        digest = RunSpec.build(**build).spec_digest()
        start = time.perf_counter()
        status, body, source = client.post("/run", {"build": build})
        latencies.append(time.perf_counter() - start)
        assert status == 200, f"cold request failed: {status} {body[:200]!r}"
        assert body == references[digest], (
            f"cold body diverged from serial reference for {build}"
        )
        assert source == "simulated", source
    return {"latency": latency_summary(latencies)}


def run_replay_phase(daemon, builds, references, requests: int,
                     connections: int = 4) -> Dict:
    """Mixed warm/cold replay over several persistent connections."""
    rng = random.Random(20260808)
    schedule: List[List[Dict]] = [[] for _ in range(connections)]
    for index in range(requests):
        schedule[index % connections].append(rng.choice(builds))

    results: List[Tuple[int, float, bool]] = []
    lock = threading.Lock()

    def worker(plan: List[Dict]):
        client = Client(daemon.host, daemon.port)
        local = []
        try:
            for build in plan:
                digest = RunSpec.build(**build).spec_digest()
                start = time.perf_counter()
                status, body, _source = client.post("/run", {"build": build})
                elapsed = time.perf_counter() - start
                identical = (status != 200) or (body == references[digest])
                local.append((status, elapsed, identical))
        finally:
            client.close()
        with lock:
            results.extend(local)

    threads = [threading.Thread(target=worker, args=(plan,))
               for plan in schedule]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    assert all(identical for _s, _e, identical in results), (
        "a 200 body diverged from the serial reference during replay"
    )
    statuses = sorted({status for status, _e, _i in results})
    assert statuses == [200], f"replay saw non-200 statuses: {statuses}"
    samples = [elapsed for _s, elapsed, _i in results]
    return {
        "requests": len(results),
        "connections": connections,
        "wall_s": round(wall, 3),
        "requests_per_sec": round(len(results) / wall, 1),
        "latency": latency_summary(samples),
    }


def run_coalesce_burst(daemon, references, width: int = BURST_WIDTH,
                       seed_tag: int = 1) -> Dict:
    """``width`` identical cold requests at once: one simulation."""
    build = {"app": "fft", "machine": "target", "nprocs": 4,
             "preset": "quick", "seed": 7000 + seed_tag}
    spec = RunSpec.build(**build)
    digest = spec.spec_digest()
    result = simulate_spec(spec)
    reference = canonical_json(result_payload(digest, result)).encode()
    references[digest] = reference

    outcomes = []
    lock = threading.Lock()
    gate = threading.Barrier(width)

    def one_shot():
        client = Client(daemon.host, daemon.port)
        try:
            gate.wait()
            start = time.perf_counter()
            status, body, source = client.post("/run", {"build": build})
            elapsed = time.perf_counter() - start
        finally:
            client.close()
        with lock:
            outcomes.append((status, body, source, elapsed))

    threads = [threading.Thread(target=one_shot) for _ in range(width)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(outcomes) == width
    assert {status for status, _b, _s, _e in outcomes} == {200}
    assert {body for _s, body, _src, _e in outcomes} == {reference}, (
        "coalesced burst bodies diverged"
    )
    sources = sorted({source for _s, _b, source, _e in outcomes})
    return {
        "width": width,
        "sources_seen": sources,
        "latency": latency_summary([e for _s, _b, _src, e in outcomes]),
    }


def run_chaos_phase(daemon, references, kills: int = 3) -> Dict:
    """SIGKILL pool workers while cold bursts are in flight."""
    killed = []
    stop = threading.Event()

    def killer():
        while not stop.is_set() and len(killed) < kills:
            for pid in daemon.worker_pids():
                if len(killed) >= kills:
                    break
                try:
                    os.kill(pid, signal.SIGKILL)
                    killed.append(pid)
                except OSError:  # noqa: PERF203 -- worker already gone
                    continue
                time.sleep(0.3)
            time.sleep(0.05)

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    bursts = []
    try:
        for tag in range(2, 5):  # three fresh cold bursts under fire
            bursts.append(
                run_coalesce_burst(daemon, references, width=8,
                                   seed_tag=tag)
            )
    finally:
        stop.set()
        thread.join(timeout=5)
    return {
        "workers_killed": len(killed),
        "bursts": bursts,
    }


# -- entry points --------------------------------------------------------------------


def run_benchmark(requests: int = DEFAULT_REQUESTS, chaos: bool = False,
                  out: Optional[Path] = None) -> Dict:
    builds = spec_universe()
    references = reference_bodies(builds)
    record: Dict = {
        "benchmark": "service",
        "preset": "quick",
        "spec_universe": len(builds),
        "python": sys.version.split()[0],
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as cache:
        daemon = DaemonProcess(cache)
        client = Client(daemon.host, daemon.port)
        try:
            record["cold"] = run_cold_phase(client, builds, references)
            record["replay"] = run_replay_phase(
                daemon, builds, references, requests
            )
            record["coalesce_burst"] = run_coalesce_burst(daemon, references)
            if chaos:
                record["chaos"] = run_chaos_phase(daemon, references)
            status, stats = client.get_json("/stats")
            assert status == 200
            record["server_stats"] = stats
            simulated = stats["simulated"]
            # Every simulation the daemon ran is accounted for: the
            # unique cold universe, the burst, and (under chaos) the
            # chaos bursts -- replay added zero.
            expected = len(references)
            assert simulated == expected, (
                f"daemon simulated {simulated} points; expected {expected} "
                f"(coalescing or caching regressed)"
            )
        finally:
            client.close()
            exit_code = daemon.terminate_and_wait()
        record["drain_exit_code"] = exit_code
        assert exit_code == 0, f"SIGTERM drain exited {exit_code}"
    if out is not None:
        out.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    return record


def test_service_replay_is_byte_identical_and_drains_cleanly():
    """Pytest wrapper: reduced load, full correctness assertions."""
    record = run_benchmark(requests=120, chaos=False, out=None)
    assert record["drain_exit_code"] == 0
    assert record["replay"]["requests"] == 120
    assert record["server_stats"]["simulated"] == record["spec_universe"] + 1


def test_service_survives_worker_kills_bit_identically():
    record = run_benchmark(requests=60, chaos=True, out=None)
    assert record["drain_exit_code"] == 0
    assert record["chaos"]["workers_killed"] >= 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS,
                        help=f"replay request count "
                             f"(default {DEFAULT_REQUESTS})")
    parser.add_argument("--chaos", action="store_true",
                        help="SIGKILL pool workers under live load")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_service.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)
    record = run_benchmark(
        requests=args.requests, chaos=args.chaos, out=Path(args.out)
    )
    replay = record["replay"]
    print(f"service bench: {replay['requests']} replayed requests at "
          f"{replay['requests_per_sec']}/s "
          f"(warm p50 {replay['latency']['p50_ms']} ms, "
          f"p99 {replay['latency']['p99_ms']} ms)")
    print(f"cold p50 {record['cold']['latency']['p50_ms']} ms over "
          f"{record['spec_universe']} unique specs; "
          f"coalesce burst x{record['coalesce_burst']['width']} -> "
          f"1 simulation")
    if "chaos" in record:
        print(f"chaos: {record['chaos']['workers_killed']} worker(s) "
              f"SIGKILLed; every 200 byte-identical")
    print(f"drain exit code {record['drain_exit_code']}; wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
