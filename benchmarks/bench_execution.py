"""Figures 12-18: execution time.

The locality result: on every application except compute-dominated EP,
the cache-less LogP machine's execution time diverges from the target,
while CLogP (the ideal coherent cache) stays close; on the mesh the
divergence is so large that LogP's curves change shape (Figs. 17-18).
"""

from __future__ import annotations

import pytest

from conftest import PRESET, regenerate
from repro import SystemConfig, simulate
from repro.apps import make_app
from repro.experiments.workloads import app_params


def _bench_point(benchmark, app, machine, topology, nprocs):
    def once():
        config = SystemConfig(processors=nprocs, topology=topology)
        instance = make_app(app, nprocs, **app_params(app, PRESET))
        return simulate(instance, machine, config)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    assert result.verified


def test_fig12_ep_execution_agreement(runner, benchmark):
    """EP: computation dominates; all three machines agree."""
    data = regenerate(runner, "fig12")
    for index, nprocs in enumerate(data.processors):
        target = data.series["target"][index]
        clogp = data.series["clogp"][index]
        logp = data.series["logp"][index]
        assert clogp <= 1.30 * target, (nprocs, target, clogp)
        assert logp <= 1.60 * target, (nprocs, target, logp)
    _bench_point(benchmark, "ep", "target", "full", data.processors[-1])


@pytest.mark.parametrize(
    "experiment_id,app,topology,min_logp_gap",
    [
        ("fig13", "fft", "mesh", 1.15),
        ("fig14", "is", "full", 1.5),
        ("fig15", "cg", "full", 1.5),
        ("fig16", "cholesky", "full", 1.5),
    ],
)
def test_logp_execution_divergence(runner, benchmark, experiment_id, app,
                                   topology, min_logp_gap):
    data = regenerate(runner, experiment_id)
    index = len(data.processors) - 1
    target = data.series["target"][index]
    clogp = data.series["clogp"][index]
    logp = data.series["logp"][index]
    # CLogP stays in the target's neighbourhood; LogP does not.  (On
    # the mesh the g-induced pessimism is visible in CLogP too -- the
    # paper's Section 6.1 caveat -- so the allowed band is wider than
    # on the full network; our scaled-down workloads communicate more,
    # relatively, than the paper's full-size inputs.)
    clogp_band = 4.0 if topology == "mesh" else 2.5
    assert clogp <= clogp_band * target, (target, clogp)
    assert logp >= min_logp_gap * target, (target, logp)
    assert logp > clogp
    _bench_point(benchmark, app, "logp", topology, data.processors[-1])


@pytest.mark.parametrize(
    "experiment_id,app", [("fig17", "cg"), ("fig18", "cholesky")]
)
def test_mesh_execution_divergence(runner, benchmark, experiment_id, app):
    """Figs. 17-18: on the mesh LogP's divergence is amplified further."""
    mesh = regenerate(runner, experiment_id)
    full_id = {"fig17": "fig15", "fig18": "fig16"}[experiment_id]
    full = regenerate(runner, full_id)
    index = len(mesh.processors) - 1
    gap_mesh = mesh.series["logp"][index] / mesh.series["target"][index]
    gap_full = full.series["logp"][index] / full.series["target"][index]
    assert gap_mesh > gap_full, (gap_full, gap_mesh)
    _bench_point(benchmark, app, "target", "mesh", mesh.processors[-1])
