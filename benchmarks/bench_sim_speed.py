"""Section 7, "Speed of Simulation".

The paper's argument for the abstractions is simulation cost: their
CLogP simulations ran 25-30% faster than the detailed target (8-10 hour
CHOLESKY points!), while the cache-less LogP model was *slower* than
the target because every would-be cache hit became a simulated network
event.

Here pytest-benchmark times the actual simulations.  The CLogP-cheaper-
than-target result reproduces strongly (our CLogP needs a fraction of
the engine events).  The LogP-slower-than-target result holds in the
quantity the paper attributes it to -- simulated network events (LogP
moves orders of magnitude more messages) -- but not in host seconds,
because this implementation transports a LogP message with closed-form
gate arithmetic rather than per-link event processing (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from conftest import PRESET
from repro import SystemConfig, simulate
from repro.apps import make_app
from repro.experiments.workloads import app_params, processor_sweep

#: The app the paper quotes (its CHOLESKY points took 8-10 hours).
APP = "cholesky"


def _run(machine: str, nprocs: int):
    config = SystemConfig(processors=nprocs, topology="full")
    instance = make_app(APP, nprocs, **app_params(APP, PRESET))
    return simulate(instance, machine, config)


@pytest.fixture(scope="module")
def nprocs():
    return processor_sweep(PRESET)[-1]


@pytest.mark.parametrize("machine", ["target", "clogp", "logp"])
def test_simulation_speed(benchmark, machine, nprocs):
    result = benchmark.pedantic(
        lambda: _run(machine, nprocs), rounds=3, iterations=1
    )
    assert result.verified
    print(
        f"\n  {machine:7s} p={nprocs}: {result.sim_events} engine events, "
        f"{result.messages} network messages, "
        f"{result.wall_seconds:.3f}s wall"
    )


def test_clogp_is_cheaper_than_target(benchmark, nprocs):
    """The paper's 25-30% saving; ours is larger."""
    target = _run("target", nprocs)
    clogp = benchmark.pedantic(
        lambda: _run("clogp", nprocs), rounds=1, iterations=1
    )
    assert clogp.sim_events < 0.75 * target.sim_events
    print(
        f"\n  events: target={target.sim_events} clogp={clogp.sim_events} "
        f"(clogp/target = {clogp.sim_events / target.sim_events:.2f})"
    )


def test_logp_moves_far_more_network_traffic(benchmark, nprocs):
    """The mechanism behind the paper's LogP slowdown."""
    target = _run("target", nprocs)
    logp = benchmark.pedantic(
        lambda: _run("logp", nprocs), rounds=1, iterations=1
    )
    assert logp.messages > 2.0 * target.messages
    print(
        f"\n  messages: target={target.messages} logp={logp.messages}"
    )
