"""Setup shim: all metadata lives in ``pyproject.toml``.

This file contributes the one thing the declarative config cannot: the
*optional* ``repro.engine._csoa`` C extension -- the compiled
event-core tier (see ``src/repro/engine/_csoa.c``).  The build is
best-effort: on hosts without a C toolchain the extension is skipped
with a warning and the install proceeds as a pure-Python wheel, where
kernel selection falls back to the SoA kernel automatically (identical
results, slower host time).  A failed compile must never fail the
install.
"""

import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """A build_ext that treats every extension failure as a skip.

    ``Extension(optional=True)`` already swallows per-extension compile
    errors; this subclass additionally catches toolchain-discovery
    failures raised by ``run()`` itself (no compiler at all), which
    happen before per-extension handling kicks in.
    """

    def run(self):
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - host-dependent
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - host-dependent
            self._skip(exc)

    @staticmethod
    def _skip(exc):
        print(
            "warning: skipping optional C extension repro.engine._csoa "
            f"({exc}); the pure-Python SoA kernel will be used",
            file=sys.stderr,
        )


setup(
    ext_modules=[
        Extension(
            "repro.engine._csoa",
            sources=["src/repro/engine/_csoa.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
