"""Overhead buckets and run-result aggregation."""

import pytest

from repro import OverheadBuckets, RunResult


def test_bucket_totals():
    buckets = OverheadBuckets(
        compute_ns=100, memory_ns=50, latency_ns=30, contention_ns=20,
        sync_ns=10,
    )
    assert buckets.total_ns == 210


def test_bucket_add():
    a = OverheadBuckets(compute_ns=10, latency_ns=5)
    b = OverheadBuckets(compute_ns=1, memory_ns=2, contention_ns=3, sync_ns=4)
    a.add(b)
    assert a.compute_ns == 11
    assert a.memory_ns == 2
    assert a.latency_ns == 5
    assert a.contention_ns == 3
    assert a.sync_ns == 4


def test_bucket_as_dict():
    buckets = OverheadBuckets(compute_ns=7)
    assert buckets.as_dict()["compute_ns"] == 7
    assert set(buckets.as_dict()) == {
        "compute_ns", "memory_ns", "latency_ns", "contention_ns", "sync_ns",
        "retry_ns",
    }


def make_result():
    return RunResult(
        app="fft",
        machine="clogp",
        topology="mesh",
        nprocs=2,
        total_ns=5_000,
        buckets=[
            OverheadBuckets(latency_ns=1_000, contention_ns=500),
            OverheadBuckets(latency_ns=3_000, contention_ns=1_500),
        ],
        messages=42,
        verified=True,
    )


def test_mean_overheads_in_microseconds():
    result = make_result()
    assert result.mean_latency_us == 2.0
    assert result.mean_contention_us == 1.0
    assert result.total_us == 5.0


def test_metric_lookup():
    result = make_result()
    assert result.metric("execution") == 5.0
    assert result.metric("latency") == 2.0
    assert result.metric("contention") == 1.0
    with pytest.raises(KeyError):
        result.metric("bandwidth")


def test_empty_buckets_mean_is_zero():
    result = RunResult(app="x", machine="m", topology="full", nprocs=1)
    assert result.mean_latency_us == 0.0


def test_summary_contains_key_fields():
    text = make_result().summary()
    assert "fft" in text and "clogp" in text and "mesh" in text
    assert "ok" in text
