"""Cross-machine integration invariants.

These are the relationships the whole study rests on, checked at small
scale for every application: execution-time orderings between machine
models, agreement of the latency abstraction, pessimism of the
contention abstraction, and reproducibility.
"""

import pytest

from repro import simulate, simulate_full
from tests.conftest import ALL_APPS, tiny_app, tiny_config


def run(app_name, machine, nprocs=4, topology="cube", **overrides):
    config = tiny_config(nprocs, topology, **overrides)
    return simulate(tiny_app(app_name, nprocs), machine, config)


@pytest.fixture(scope="module")
def results():
    """All (app, machine) runs at p=4 on the cube, shared by the tests."""
    out = {}
    for app_name in ALL_APPS:
        for machine in ("ideal", "target", "clogp", "logp"):
            out[(app_name, machine)] = run(app_name, machine)
    return out


@pytest.mark.parametrize("app_name", ALL_APPS)
def test_ideal_time_is_a_lower_bound(results, app_name):
    ideal = results[(app_name, "ideal")].total_ns
    for machine in ("target", "clogp", "logp"):
        assert results[(app_name, machine)].total_ns >= ideal


@pytest.mark.parametrize("app_name", ALL_APPS)
def test_logp_never_beats_the_cached_abstraction(results, app_name):
    """Ignoring locality can only add network traffic."""
    assert (
        results[(app_name, "logp")].total_ns
        >= results[(app_name, "clogp")].total_ns
    )


@pytest.mark.parametrize("app_name", ALL_APPS)
def test_clogp_latency_tracks_target(results, app_name):
    """The paper's network-abstraction result: L models latency well."""
    target = results[(app_name, "target")].mean_latency_us
    clogp = results[(app_name, "clogp")].mean_latency_us
    if target < 1.0:  # degenerate: effectively no communication
        return
    assert 0.4 * target <= clogp <= 2.5 * target


@pytest.mark.parametrize("app_name", ALL_APPS)
def test_logp_latency_far_exceeds_target(results, app_name):
    """The locality result: without caches, latency overhead explodes."""
    target = results[(app_name, "target")].mean_latency_us
    logp = results[(app_name, "logp")].mean_latency_us
    assert logp > 2.0 * max(target, 1.0)


@pytest.mark.parametrize("app_name", ALL_APPS)
def test_clogp_contention_is_pessimistic(results, app_name):
    """g (from bisection bandwidth) overestimates contention."""
    target = results[(app_name, "target")].mean_contention_us
    clogp = results[(app_name, "clogp")].mean_contention_us
    assert clogp >= 0.8 * target


@pytest.mark.parametrize("app_name", ALL_APPS)
def test_ideal_has_no_network_overheads(results, app_name):
    result = results[(app_name, "ideal")]
    assert result.mean_latency_us == 0
    assert result.mean_contention_us == 0
    assert result.messages == 0


@pytest.mark.parametrize("app_name", ALL_APPS)
def test_total_time_is_max_processor_finish(results, app_name):
    for machine in ("target", "clogp"):
        result = results[(app_name, machine)]
        assert result.total_ns > 0
        assert len(result.buckets) == result.nprocs


def test_runs_are_deterministic():
    a = run("cholesky", "target")
    b = run("cholesky", "target")
    assert a.total_ns == b.total_ns
    assert a.messages == b.messages
    assert [x.as_dict() for x in a.buckets] == [x.as_dict() for x in b.buckets]


def test_seed_changes_the_workload():
    a = run("is", "clogp")
    b = run("is", "clogp", seed=999)
    assert a.total_ns != b.total_ns


@pytest.mark.parametrize("app_name", ALL_APPS)
def test_clogp_messages_do_not_exceed_target(app_name):
    """CLogP's traffic is the minimum an invalidation protocol can do."""
    config = tiny_config(4, "full")
    target = simulate(tiny_app(app_name, 4), "target", config)
    clogp = simulate(tiny_app(app_name, 4), "clogp", tiny_config(4, "full"))
    assert clogp.messages <= target.messages


@pytest.mark.parametrize("app_name", ["fft", "is", "cg"])
def test_latency_overhead_is_topology_insensitive_on_cached_machines(app_name):
    """Paper Section 6.1: message count/size dominates hops, so the
    latency overhead barely moves across full/cube/mesh."""
    values = []
    for topology in ("full", "cube", "mesh"):
        result = run(app_name, "clogp", topology=topology)
        values.append(result.mean_latency_us)
    assert max(values) <= 1.05 * min(values) + 1.0


def test_single_processor_has_no_network_traffic():
    for machine in ("target", "clogp", "logp"):
        result = run("fft", machine, nprocs=1)
        assert result.mean_latency_us == 0
        assert result.mean_contention_us == 0


def test_mesh_contention_exceeds_full_on_clogp():
    """Lower connectivity -> larger g -> more modeled contention."""
    full = run("is", "clogp", nprocs=8, topology="full")
    mesh = run("is", "clogp", nprocs=8, topology="mesh")
    assert mesh.mean_contention_us > full.mean_contention_us


def test_coherence_invariants_after_full_runs():
    for app_name in ALL_APPS:
        for machine in ("target", "clogp"):
            config = tiny_config(4, "mesh")
            result, machine_obj = simulate_full(
                tiny_app(app_name, 4), machine, config, check_invariants=True
            )
            assert result.verified


def test_bucket_sums_bound_execution_time():
    """No processor's bucket total exceeds the run's total time."""
    result = run("cg", "target")
    for buckets in result.buckets:
        assert buckets.total_ns <= result.total_ns


def test_sim_events_counted():
    result = run("fft", "target")
    assert result.sim_events > 100
