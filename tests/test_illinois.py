"""The Illinois/MESI protocol variant (the paper's "fancier protocol")."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigError, SystemConfig, simulate
from repro.core import ops
from repro.core.coherence import CoherentMemory
from repro.core.machine import Processor, make_machine
from repro.memory import AddressSpace, LineState

from tests.conftest import ALL_APPS, tiny_app, tiny_config


def make_memory(nprocs=4, protocol="illinois"):
    config = SystemConfig(
        processors=nprocs,
        cache_size_bytes=4 * 2 * 32,
        cache_assoc=2,
        protocol=protocol,
    )
    space = AddressSpace(nprocs, config.block_bytes)
    space.alloc("data", 4096, 1, "interleaved")
    return CoherentMemory(config, space), space


def block_at(space, node, offset=0):
    region = space.regions[0]
    return region.first_block + node + offset * space.nprocs


# -- config -----------------------------------------------------------------------


def test_protocol_validation():
    SystemConfig(protocol="illinois")
    with pytest.raises(ConfigError):
        SystemConfig(protocol="firefly")


# -- state machine -------------------------------------------------------------------


def test_sole_read_fills_exclusive():
    memory, space = make_memory()
    block = block_at(space, 1)
    plan = memory.plan_read(0, block)
    assert plan.from_memory
    assert memory.caches[0].state_of(block) is LineState.EXCLUSIVE
    assert memory.directory.entry(block).owner == 0


def test_berkeley_never_fills_exclusive():
    memory, space = make_memory(protocol="berkeley")
    block = block_at(space, 1)
    memory.plan_read(0, block)
    assert memory.caches[0].state_of(block) is LineState.VALID


def test_second_reader_downgrades_exclusive_to_shared():
    memory, space = make_memory()
    block = block_at(space, 1)
    memory.plan_read(0, block)
    plan = memory.plan_read(2, block)
    # The EXCLUSIVE holder supplies the data (it is the owner) but is
    # clean, so no sharing writeback is needed.
    assert plan.source == 0 and not plan.from_memory
    assert not plan.sharing_writeback
    assert memory.caches[0].state_of(block) is LineState.VALID
    assert memory.caches[2].state_of(block) is LineState.VALID
    assert memory.directory.entry(block).owner is None


def test_read_from_dirty_owner_causes_sharing_writeback():
    memory, space = make_memory()
    block = block_at(space, 1)
    memory.plan_write(0, block)  # 0 holds DIRTY
    plan = memory.plan_read(2, block)
    assert plan.source == 0
    assert plan.sharing_writeback  # memory gets the data back
    # MESI: after the read both are shared and memory is clean.
    assert memory.caches[0].state_of(block) is LineState.VALID
    assert memory.directory.entry(block).owner is None
    # A third read now comes from memory.
    plan3 = memory.plan_read(3, block)
    assert plan3.from_memory


def test_silent_upgrade():
    memory, space = make_memory()
    block = block_at(space, 1)
    memory.plan_read(0, block)  # EXCLUSIVE
    assert memory.try_silent_upgrade(0, block)
    assert memory.caches[0].state_of(block) is LineState.DIRTY
    assert memory.silent_upgrades == 1
    # Only once: now DIRTY, not EXCLUSIVE.
    assert not memory.try_silent_upgrade(0, block)


def test_silent_upgrade_refused_under_berkeley():
    memory, space = make_memory(protocol="berkeley")
    block = block_at(space, 1)
    memory.plan_read(0, block)
    assert not memory.try_silent_upgrade(0, block)


def test_shared_write_still_invalidates():
    memory, space = make_memory()
    block = block_at(space, 1)
    memory.plan_read(0, block)
    memory.plan_read(2, block)  # both now VALID (shared)
    plan = memory.plan_write(0, block)
    assert not plan.fast and plan.had_data
    assert plan.invalidated == (2,)
    assert memory.caches[2].state_of(block) is LineState.INVALID
    assert memory.caches[0].state_of(block) is LineState.DIRTY


def test_exclusive_eviction_is_silent():
    memory, space = make_memory()
    region_first = space.regions[0].first_block
    # 1-way-like pressure: fill both ways of set 0 then add a third.
    blocks = [region_first + 8 * i for i in range(3)]  # same set (8 sets? )
    # sets = cache_size/(block*assoc) = 4; stride of 4 hits one set.
    blocks = [region_first + 4 * i for i in range(3)]
    for b in blocks[:2]:
        memory.plan_read(0, b)
    plan = memory.plan_read(0, blocks[2])
    assert plan.writeback is None  # EXCLUSIVE victims are clean
    memory.check_invariants()


def test_dirty_eviction_still_writes_back():
    memory, space = make_memory()
    region_first = space.regions[0].first_block
    blocks = [region_first + 4 * i for i in range(3)]
    memory.plan_write(0, blocks[0])
    memory.plan_read(0, blocks[1])
    plan = memory.plan_read(0, blocks[2])
    assert plan.writeback is not None


@settings(max_examples=50, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 11), st.booleans()),
        min_size=1,
        max_size=150,
    )
)
def test_illinois_invariants_under_random_traffic(operations):
    memory, space = make_memory()
    first = space.regions[0].first_block
    for pid, offset, is_write in operations:
        block = first + offset
        if is_write:
            memory.plan_write(pid, block)
        else:
            memory.plan_read(pid, block)
        state = memory.caches[pid].state_of(block)
        if is_write:
            assert state is LineState.DIRTY
        # EXCLUSIVE/DIRTY are sole copies.
        if state in (LineState.DIRTY, LineState.EXCLUSIVE):
            holders = [
                p for p in range(4)
                if memory.caches[p].state_of(block).is_valid
            ]
            assert holders == [pid]
    memory.check_invariants()


# -- machine level -------------------------------------------------------------------------


def build_machine(machine_name, protocol):
    config = SystemConfig(processors=4, topology="full", protocol=protocol)
    machine = make_machine(machine_name, config)
    array = machine.space.alloc("data", 1024, 8, "interleaved")
    return machine, array


def run_programs(machine, programs):
    processors = [Processor(machine, pid) for pid in range(machine.nprocs)]
    machine.processors = processors
    for pid, program in programs.items():
        machine.sim.spawn(processors[pid].run(iter(program)), name=f"cpu{pid}")
    machine.sim.run()
    return processors


def test_target_illinois_read_then_write_is_one_transaction():
    """MESI's point: private read-then-write costs a single miss."""
    machine, array = build_machine("target", "illinois")
    addr = array.addr(8)  # homed on node 2 (interleaved, block 1 rel)
    [p0] = run_programs(
        machine, {0: [ops.Read(addr), ops.Write(addr)]}
    )[:1]
    # Read miss: req + data = 2 messages; write: silent upgrade = 0.
    assert machine.message_count() == 2
    assert machine.memory.silent_upgrades == 1


def test_target_berkeley_same_sequence_pays_for_the_upgrade():
    machine, array = build_machine("target", "berkeley")
    addr = array.addr(8)
    run_programs(machine, {0: [ops.Read(addr), ops.Write(addr)]})
    # Read miss (2) + upgrade transaction (req + grant = 2).
    assert machine.message_count() == 4


@pytest.mark.parametrize("app_name", ALL_APPS)
@pytest.mark.parametrize("machine", ["target", "clogp"])
def test_apps_verify_under_illinois(app_name, machine):
    config = tiny_config(4, "cube", protocol="illinois")
    result = simulate(tiny_app(app_name, 4), machine, config,
                      check_invariants=True)
    assert result.verified


@pytest.mark.parametrize("app_name", ["cg", "fft", "cholesky"])
def test_illinois_traffic_is_comparable(app_name):
    """Illinois trades upgrade transactions for sharing writebacks; the
    totals stay within ~15% of Berkeley's either way (at full scale the
    silent upgrades win, see exp-proto)."""
    results = {}
    for protocol in ("berkeley", "illinois"):
        config = tiny_config(4, "full", protocol=protocol)
        results[protocol] = simulate(tiny_app(app_name, 4), "target", config)
    assert results["illinois"].messages <= 1.15 * results["berkeley"].messages


def test_clogp_traffic_is_floor_for_both_protocols():
    for protocol in ("berkeley", "illinois"):
        config = tiny_config(4, "full", protocol=protocol)
        target = simulate(tiny_app("cg", 4), "target", config)
        clogp = simulate(
            tiny_app("cg", 4), "clogp", tiny_config(4, "full",
                                                    protocol=protocol)
        )
        assert clogp.messages <= target.messages
