"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import SystemConfig
from repro.apps import make_app

#: Tiny application parameter sets used across the tests -- small enough
#: that a full simulation takes well under a second.
TINY_PARAMS = {
    "ep": {"pairs": 2_048},
    "is": {"keys": 512, "buckets": 64, "iterations": 1},
    "cg": {"n": 64, "nnz_per_row": 4, "iterations": 2},
    "fft": {"points": 256},
    "cholesky": {"n": 48, "density": 0.12},
}

ALL_APPS = tuple(sorted(TINY_PARAMS))
ALL_MACHINES = ("target", "logp", "clogp", "ideal")
ALL_TOPOLOGIES = ("full", "cube", "mesh")


def tiny_app(name: str, nprocs: int):
    """A freshly constructed tiny application instance."""
    return make_app(name, nprocs, **TINY_PARAMS[name])


def tiny_config(nprocs: int = 4, topology: str = "full", **overrides):
    """A small machine configuration for tests."""
    return SystemConfig(processors=nprocs, topology=topology, **overrides)


@pytest.fixture
def config4():
    return tiny_config(4)


@pytest.fixture
def config8_mesh():
    return tiny_config(8, "mesh")


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/*.json with the digests of the "
             "current build instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request):
    return request.config.getoption("--update-goldens")
