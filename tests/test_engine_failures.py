"""Failure propagation through the discrete-event engine.

The machine models compose behaviour with deep ``yield from`` chains
(application -> processor -> cache -> network); these tests pin down
that an :meth:`Event.fail` surfaces correctly through that composition
and that a drained queue with blocked processes is a diagnosed
deadlock, not a silent exit.
"""

import pytest

from repro.engine.core import Simulator, all_of
from repro.errors import DeadlockError, ReproError, SimulationError


class BoomError(ReproError):
    """Marker exception used by these tests."""


def test_event_fail_throws_into_waiter():
    sim = Simulator()
    event = sim.event()
    caught = {}

    def waiter():
        try:
            yield event
        except BoomError as exc:
            caught["exc"] = exc
            return "recovered"

    process = sim.spawn(waiter())
    event.fail(BoomError("boom"))
    sim.run()
    assert str(caught["exc"]) == "boom"
    assert process.value == "recovered"


def test_event_fail_propagates_through_yield_from_chain():
    """The exception travels through nested generator delegation."""
    sim = Simulator()
    event = sim.event()
    trace = []

    def innermost():
        value = yield event
        return value

    def middle():
        trace.append("middle-enter")
        result = yield from innermost()
        trace.append("middle-exit")  # must not run
        return result

    def outer():
        try:
            yield from middle()
        except BoomError:
            trace.append("outer-caught")
            return "handled"

    process = sim.spawn(outer())
    event.fail(BoomError("deep"))
    sim.run()
    assert trace == ["middle-enter", "outer-caught"]
    assert process.value == "handled"


def test_unhandled_fail_aborts_fail_fast_run_with_type():
    """fail_fast keeps ReproError subtypes intact for callers."""
    sim = Simulator()
    event = sim.event()

    def waiter():
        yield event

    sim.spawn(waiter())
    event.fail(BoomError("unhandled"))
    with pytest.raises(BoomError):
        sim.run()


def test_unhandled_foreign_exception_is_wrapped():
    sim = Simulator()

    def exploder():
        yield sim.timeout(1)
        raise ValueError("not a simulator error")

    sim.spawn(exploder())
    with pytest.raises(SimulationError) as info:
        sim.run()
    assert isinstance(info.value.__cause__, ValueError)


def test_failed_process_fails_its_joiners():
    sim = Simulator(fail_fast=False)

    def child():
        yield sim.timeout(5)
        raise BoomError("child died")

    def parent():
        try:
            yield sim.spawn(child())
        except BoomError:
            return "saw child failure"

    process = sim.spawn(parent())
    sim.run()
    assert process.value == "saw child failure"


def test_all_of_fails_when_any_member_fails():
    sim = Simulator(fail_fast=False)
    good = sim.event()
    bad = sim.event()

    def waiter():
        try:
            yield all_of(sim, [good, bad])
        except BoomError:
            return "composite failed"

    process = sim.spawn(waiter())
    good.succeed(1)
    bad.fail(BoomError("member"))
    sim.run()
    assert process.value == "composite failed"


def test_deadlock_error_counts_blocked_processes():
    sim = Simulator()
    never = sim.event()

    def blocked():
        yield never

    sim.spawn(blocked(), name="a")
    sim.spawn(blocked(), name="b")
    with pytest.raises(DeadlockError) as info:
        sim.run()
    assert info.value.blocked == 2
    assert "deadlocked" in str(info.value)


def test_no_deadlock_when_everything_completes():
    sim = Simulator()
    gate = sim.event()

    def releaser():
        yield sim.timeout(10)
        gate.succeed("open")

    def waiter():
        value = yield gate
        return value

    sim.spawn(releaser())
    process = sim.spawn(waiter())
    sim.run()
    assert process.value == "open"
