"""The runtime sanitizer: each checker fires on a seeded violation,
clean runs report clean, and checking never perturbs the simulation."""

import heapq

import pytest

from repro import FaultConfig, SystemConfig, make_app, simulate
from repro.checkers import (
    CheckerSet,
    CheckReport,
    CoherenceChecker,
    ConservationChecker,
    DeterminismChecker,
    ExactlyOnceChecker,
    MonotonicityChecker,
    make_checkers,
)
from repro.core.accounting import RunResult
from repro.core.coherence import CoherentMemory
from repro.core.runner import simulate_full
from repro.engine.core import Simulator
from repro.errors import InvariantError
from repro.memory.address import AddressSpace

from .conftest import ALL_MACHINES, tiny_app, tiny_config

FAULT = FaultConfig(drop_rate=0.05, corrupt_rate=0.02, delay_rate=0.05,
                    delay_ns=500)


def _checked_run(machine, check="strict", fault=None, **config_kw):
    config = tiny_config(4, check=check,
                         fault=fault if fault is not None else FaultConfig(),
                         **config_kw)
    return simulate(tiny_app("fft", 4), machine, config)


# -- construction -------------------------------------------------------------------


def test_make_checkers_off_returns_none():
    assert make_checkers(tiny_config(4, check="off")) is None


def test_make_checkers_levels():
    basic = make_checkers(tiny_config(4, check="basic"))
    names = [type(c).__name__ for c in basic]
    assert "DeterminismChecker" not in names
    assert {"MonotonicityChecker", "CoherenceChecker",
            "ConservationChecker", "ExactlyOnceChecker"} <= set(names)
    strict = make_checkers(tiny_config(4, check="strict"))
    assert any(isinstance(c, DeterminismChecker) for c in strict)
    digest_only = make_checkers(tiny_config(4, check="off", digest=True))
    assert [type(c).__name__ for c in digest_only] == ["DeterminismChecker"]


def test_invariant_error_carries_context():
    checker = MonotonicityChecker()
    with pytest.raises(InvariantError) as excinfo:
        checker.violation(1234, "the sky fell")
    err = excinfo.value
    assert err.checker == "monotonicity"
    assert err.now == 1234
    assert "the sky fell" in str(err)
    assert "t=1234" in str(err)


# -- clean runs ---------------------------------------------------------------------


@pytest.mark.parametrize("machine", ALL_MACHINES)
def test_clean_run_reports_ok(machine):
    result = _checked_run(machine)
    report = result.check_report
    assert report is not None
    assert report.ok
    assert report.total_checks > 0
    assert report.digest is not None


@pytest.mark.parametrize("machine", ("target", "clogp", "logp"))
def test_clean_faulty_run_reports_ok(machine):
    result = _checked_run(machine, fault=FAULT)
    report = result.check_report
    assert report.ok
    exactly_once = next(
        r for r in report.results if r.name == "exactly-once"
    )
    assert exactly_once.checks > 0  # the ARQ layer was exercised


def test_coherence_checker_runs_on_cached_machines_only():
    target = _checked_run("target").check_report
    logp = _checked_run("logp").check_report
    assert next(r for r in target.results if r.name == "coherence").checks > 0
    assert next(r for r in logp.results if r.name == "coherence").checks == 0


# -- mutation tests: every checker fires on a seeded violation ----------------------


def test_monotonicity_checker_fires_on_past_schedule():
    sim = Simulator(checkers=(MonotonicityChecker(),))
    with pytest.raises(InvariantError, match="monotonicity"):
        sim._schedule(-1, lambda: None)


class _Action:
    """Callable that tolerates heap tie-breaking comparisons."""

    def __call__(self):
        pass

    def __lt__(self, _other):
        return False


def test_monotonicity_checker_fires_on_replayed_heap_entry():
    checker = MonotonicityChecker()
    sim = Simulator(checkers=(checker,))
    # Two identical (time, sequence) keys cannot come from _schedule;
    # seeding them directly simulates heap corruption.
    action = _Action()
    heapq.heappush(sim._queue, (0, 7, action))
    heapq.heappush(sim._queue, (0, 7, action))
    with pytest.raises(InvariantError, match="monotonicity"):
        sim.run()


def _coherent_memory(check="basic"):
    config = tiny_config(4, check=check)
    checkers = make_checkers(config)
    sim = Simulator()
    space = AddressSpace(config.processors, config.block_bytes)
    # Home lookup needs allocated memory behind the probed blocks.
    space.alloc("data", 64, config.block_bytes, "blocked")
    memory = CoherentMemory(config, space, checkers=checkers, sim=sim)
    return memory, checkers


def test_coherence_checker_fires_on_phantom_sharer():
    memory, _ = _coherent_memory()
    memory.plan_read(0, block=5)  # clean transition passes
    memory.directory.entry(5).sharers.add(3)  # 3 holds no line
    with pytest.raises(InvariantError, match="coherence"):
        memory.plan_read(1, block=5)


def test_coherence_checker_strict_sweeps_other_blocks():
    memory, _ = _coherent_memory(check="strict")
    memory.plan_write(0, block=5)
    memory.directory.entry(5).sharers = set()  # owner no longer a sharer
    # Basic only checks the touched block; the strict global sweep after
    # a transition on an unrelated block still catches the corruption.
    with pytest.raises(InvariantError, match="coherence"):
        memory.plan_read(1, block=9)


def test_coherence_checker_fires_on_swmr_violation():
    from repro.memory.states import LineState

    memory, _ = _coherent_memory(check="basic")
    memory.plan_write(1, block=5)
    # Seed a second DIRTY copy: the canonical single-writer violation.
    memory.caches[0].install(5, LineState.DIRTY)
    with pytest.raises(InvariantError, match="coherence"):
        memory.plan_read(2, block=5)


def test_conservation_checker_fires_on_time_drift():
    config = tiny_config(2, check="off")
    result, machine = simulate_full(tiny_app("ep", 2), "ideal", config)
    assert result.check_report is None
    checker = ConservationChecker()
    machine.processors[0].buckets.compute_ns += 1  # create 1 ns from nothing
    with pytest.raises(InvariantError, match="conserve"):
        checker.finalize(machine)


def test_conservation_checker_fires_on_negative_bucket():
    config = tiny_config(2, check="off")
    _result, machine = simulate_full(tiny_app("ep", 2), "ideal", config)
    checker = ConservationChecker()
    machine.processors[1].buckets.sync_ns = -5
    with pytest.raises(InvariantError, match="negative bucket"):
        checker.finalize(machine)


def test_conservation_checker_fires_on_silent_message_loss():
    config = tiny_config(2, check="off")
    _result, machine = simulate_full(tiny_app("ep", 2), "ideal", config)
    checker = ConservationChecker()
    # An undelivered message on a fault-free machine is a leak.
    checker.on_message(0, 0, 1, "mp", 32, False)
    with pytest.raises(InvariantError, match="fault-free"):
        checker.finalize(machine)


def test_exactly_once_checker_fires_on_unmatched_delivery():
    checker = ExactlyOnceChecker()
    checker.on_logical_send(0, 0, 1)
    checker.on_app_delivery(10, 0, 1, duplicate=False)
    with pytest.raises(InvariantError, match="exactly-once"):
        checker.on_app_delivery(20, 0, 1, duplicate=False)


def test_exactly_once_checker_fires_on_incomplete_channel():
    checker = ExactlyOnceChecker()
    checker.on_logical_send(0, 0, 1)
    checker.on_app_delivery(10, 0, 1, duplicate=False)

    class _M:
        pass

    machine = _M()
    machine.sim = Simulator()
    with pytest.raises(InvariantError, match="not exactly-once"):
        checker.finalize(machine)  # delivered but never acked/completed


def test_determinism_checker_distinguishes_executions():
    # IS draws its keys from the seeded RNG, so a different seed changes
    # the access pattern (FFT would not: its pattern is data-oblivious).
    def run(seed):
        config = tiny_config(4, check="strict", seed=seed)
        return simulate(tiny_app("is", 4), "target", config)

    a = run(12345).check_report.digest
    b = run(12345).check_report.digest
    c = run(999).check_report.digest
    assert a == b
    assert a != c


# -- the sanitizer never perturbs the run -------------------------------------------


@pytest.mark.parametrize("machine", ALL_MACHINES)
def test_check_levels_do_not_perturb_results(machine):
    """Checkers are passive: every level (and off) must time identically."""
    outcomes = {}
    for check in ("off", "basic", "strict"):
        result = _checked_run(machine, check=check)
        data = result.to_dict()
        data.pop("wall_seconds")
        data.pop("check_report")
        # Engine metadata records *how* the run executed, and check
        # levels legitimately change that (hooked levels force the
        # object kernel's heap-only instrumented loop): only the
        # kernel-dispatch split moves, never what was simulated.
        data.pop("engine")
        outcomes[check] = data
    assert outcomes["off"] == outcomes["basic"] == outcomes["strict"]


def test_digest_is_independent_of_check_level():
    basic = _checked_run("target", check="basic", digest=True)
    strict = _checked_run("target", check="strict")
    off = simulate(
        tiny_app("fft", 4), "target", tiny_config(4, check="off", digest=True)
    )
    assert (basic.check_report.digest == strict.check_report.digest
            == off.check_report.digest)


def test_check_off_attaches_no_hooks():
    config = tiny_config(4, check="off")
    _result, machine = simulate_full(tiny_app("ep", 4), "target", config)
    assert machine.checkers is None
    assert machine.sim._event_hooks == ()
    assert machine.sim._schedule_hooks == ()
    assert machine.fabric._message_hooks == ()
    assert machine.memory._transition_hooks == ()


# -- reporting ----------------------------------------------------------------------


def test_check_report_round_trips():
    report = _checked_run("target", fault=FAULT).check_report
    rebuilt = CheckReport.from_dict(report.to_dict())
    assert rebuilt == report
    assert rebuilt.summary() == report.summary()


def test_run_result_round_trips_check_report():
    result = _checked_run("clogp")
    rebuilt = RunResult.from_dict(result.to_dict())
    assert rebuilt.check_report == result.check_report
    # Pre-sanitizer checkpoints have no such key at all.
    legacy = result.to_dict()
    del legacy["check_report"]
    assert RunResult.from_dict(legacy).check_report is None


def test_checker_set_precomputes_hook_tuples():
    checkers = CheckerSet(
        "basic", [MonotonicityChecker(), ConservationChecker(),
                  CoherenceChecker(), ExactlyOnceChecker(),
                  DeterminismChecker()]
    )
    assert len(checkers.event_hooks) == 2       # monotonicity + determinism
    assert len(checkers.schedule_hooks) == 1    # monotonicity
    assert len(checkers.message_hooks) == 2     # conservation + determinism
    assert len(checkers.transition_hooks) == 1  # coherence
    assert len(checkers.arq_checkers) == 1      # exactly-once
