"""SIGTERM takes the same clean-shutdown path as Ctrl-C.

PR 6 flushed sweep checkpoints on ``KeyboardInterrupt``, which only
SIGINT raises; a daemonized or CI-supervised sweep gets SIGTERM and
would have died without flushing.  These tests pin the conversion
context manager and the CLI wiring: a SIGTERM mid-sweep exits 130 with
the checkpoint on disk, exactly like an interactive interrupt.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.cli import EXIT_INTERRUPTED, main
from repro.signals import (
    TERMINATION_SIGNALS,
    raise_keyboard_interrupt_on_sigterm,
)


def test_termination_signals_cover_int_and_term():
    assert signal.SIGINT in TERMINATION_SIGNALS
    assert signal.SIGTERM in TERMINATION_SIGNALS


def test_sigterm_raises_keyboard_interrupt_inside_the_block():
    with pytest.raises(KeyboardInterrupt):
        with raise_keyboard_interrupt_on_sigterm():
            os.kill(os.getpid(), signal.SIGTERM)
            # The signal is delivered at the next bytecode boundary.
            for _ in range(1000):
                time.sleep(0.001)
            raise AssertionError("SIGTERM was not converted")


def test_previous_handler_is_restored_on_exit():
    sentinel = []

    def outer(signum, frame):
        sentinel.append(signum)

    previous = signal.signal(signal.SIGTERM, outer)
    try:
        with raise_keyboard_interrupt_on_sigterm():
            assert signal.getsignal(signal.SIGTERM) is not outer
        assert signal.getsignal(signal.SIGTERM) is outer
    finally:
        signal.signal(signal.SIGTERM, previous)


def test_nested_blocks_unwind_cleanly():
    before = signal.getsignal(signal.SIGTERM)
    with raise_keyboard_interrupt_on_sigterm():
        with raise_keyboard_interrupt_on_sigterm():
            pass
    assert signal.getsignal(signal.SIGTERM) is before


def test_off_main_thread_is_a_documented_noop():
    before = signal.getsignal(signal.SIGTERM)
    outcome = {}

    def body():
        try:
            with raise_keyboard_interrupt_on_sigterm():
                outcome["entered"] = True
        except Exception as exc:  # pragma: no cover - the failure mode
            outcome["error"] = exc

    thread = threading.Thread(target=body)
    thread.start()
    thread.join()
    assert outcome == {"entered": True}
    assert signal.getsignal(signal.SIGTERM) is before


def test_sigterm_mid_sweep_exits_130_with_checkpoint_flushed(
    tmp_path, monkeypatch, capsys
):
    """``repro figure`` under SIGTERM: checkpoint on disk, exit 130."""
    from repro.experiments import SweepRunner

    checkpoint = tmp_path / "sweep.ckpt.json"
    real_prefetch = SweepRunner.prefetch

    def prefetch_then_terminate(self, experiments):
        # Complete the sweep (so there are points worth flushing), then
        # model the host terminating us before rendering finishes.
        real_prefetch(self, experiments)
        os.kill(os.getpid(), signal.SIGTERM)
        time.sleep(30)  # interrupted by the converted signal
        raise AssertionError("SIGTERM never arrived")

    monkeypatch.setattr(SweepRunner, "prefetch", prefetch_then_terminate)
    code = main([
        "figure", "fig01", "--preset", "quick", "--jobs", "2",
        "--resume", str(checkpoint),
    ])
    assert code == EXIT_INTERRUPTED
    captured = capsys.readouterr()
    assert "checkpointed" in captured.err
    # The checkpoint survived the termination with every point in it.
    payload = json.loads(checkpoint.read_text())
    assert payload["results"]
    assert payload["failures"] == {}
