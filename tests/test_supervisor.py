"""SupervisedPoolBackend: worker death, hung points, degradation.

Every test here attacks a real ``ProcessPoolExecutor`` -- SIGKILLed
workers, tasks that never return, workers too wedged to deliver their
own alarm -- and asserts the supervision contract: the sweep still
yields an outcome for *every* spec, completed points are bit-identical
to a serial run, and unrecoverable points surface as structured
:class:`~repro.exec.backend.PointFailure` records instead of exceptions.
"""

import functools
import os
import signal
import time

from repro import RunSpec
from repro.exec import (
    PointFailure,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    SupervisedPoolBackend,
    execute_spec,
    make_backend,
)
from repro.exec.backend import drain


def canonical(result) -> dict:
    data = result.to_dict()
    data.pop("wall_seconds")
    return data


def quick_specs(*processor_counts, machine="ideal"):
    return [
        RunSpec.build("fft", machine, nprocs, preset="quick", digest=True)
        for nprocs in processor_counts
    ]


# -- worker-side tasks (module-level: they must pickle to the pool) ------------------


def crashing_task(spec, policy, deadline_s):
    """Every attempt kills its worker outright (no Python unwinding)."""
    os._exit(13)


def wedged_task(spec, policy, deadline_s):
    """A worker too stuck to deliver its own deadline alarm.

    Blocking SIGALRM models a point wedged inside C code: the in-worker
    deadline guard can never fire, so only the supervisor's host-side
    timer can reclaim the worker.
    """
    signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
    time.sleep(120)


def stalling_task(stall_digest, spec, policy, deadline_s):
    """Stall one chosen spec on every attempt; run the rest normally."""
    def stall(inner_spec, attempt):
        if inner_spec.spec_digest() == stall_digest:
            time.sleep(120)

    return execute_spec(
        spec, policy=policy, deadline_s=deadline_s, before_attempt=stall
    )


# -- construction --------------------------------------------------------------------


def test_make_backend_supervises_parallel_by_default():
    backend = make_backend(2)
    assert isinstance(backend, SupervisedPoolBackend)
    assert isinstance(backend, ProcessPoolBackend)  # drop-in for the bare pool
    bare = make_backend(2, supervise=False)
    assert type(bare) is ProcessPoolBackend


# -- worker death --------------------------------------------------------------------


def test_sigkilled_worker_is_recovered_bit_identically():
    """The tentpole claim: SIGKILL a worker mid-sweep and every point
    still completes, bit-identical to serial execution."""
    specs = quick_specs(1, 2, 4) + quick_specs(1, 2, 4, machine="clogp")
    serial = drain(SerialBackend().run(specs))

    kills = {"count": 0}

    def killer(backend, completed):
        if completed == 1 and kills["count"] == 0:
            pids = backend.worker_pids()
            if pids:
                os.kill(pids[0], signal.SIGKILL)
                kills["count"] += 1

    backend = SupervisedPoolBackend(
        2, policy=RetryPolicy(max_retries=3), observer=killer
    )
    with backend:
        parallel = drain(backend.run(specs))

    assert kills["count"] == 1
    assert backend.rebuilds >= 1
    assert not backend.degraded
    assert set(parallel) == set(serial)
    for key, serial_result in serial.items():
        assert not isinstance(parallel[key], PointFailure)
        assert canonical(parallel[key]) == canonical(serial_result)
        assert (parallel[key].check_report.digest
                == serial_result.check_report.digest)


def test_rebuild_listener_fires_before_every_rebuild():
    """The checkpoint-flush hook: one call per pool rebuild."""
    flushes = {"count": 0}
    backend = SupervisedPoolBackend(
        2,
        policy=RetryPolicy(max_retries=1),
        task_fn=crashing_task,
        max_rebuilds=100,
    )
    backend.add_rebuild_listener(
        lambda: flushes.__setitem__("count", flushes["count"] + 1)
    )
    with backend:
        outcomes = drain(backend.run(quick_specs(1, 2)))
    assert backend.rebuilds >= 1
    assert flushes["count"] == backend.rebuilds
    assert all(isinstance(o, PointFailure) for o in outcomes.values())


def test_crash_looping_spec_fails_with_worker_crash_error():
    """A spec whose resubmissions keep dying must come back as a
    structured failure, not crash-loop the pool forever."""
    backend = SupervisedPoolBackend(
        2,
        policy=RetryPolicy(max_retries=1),
        task_fn=crashing_task,
        max_rebuilds=100,
    )
    with backend:
        outcomes = drain(backend.run(quick_specs(1, 2)))
    assert backend.rebuilds == 2  # budget: initial dispatch + 1 resubmission
    assert not backend.degraded
    for outcome in outcomes.values():
        assert isinstance(outcome, PointFailure)
        assert outcome.error == "WorkerCrashError"
        assert outcome.attempts == 2


def test_degrades_to_serial_after_consecutive_rebuilds():
    """With a generous retry budget but a pool that keeps dying, the
    supervisor abandons the pool and finishes the sweep in-process."""
    specs = quick_specs(1, 2, 4)
    serial = drain(SerialBackend().run(specs))
    backend = SupervisedPoolBackend(
        2,
        policy=RetryPolicy(max_retries=10),
        task_fn=crashing_task,
        max_rebuilds=2,
    )
    with backend:
        outcomes = drain(backend.run(specs))
    assert backend.degraded
    assert backend.rebuilds == 2
    assert backend.stats()["degraded"] == 1
    # Serial fallback executed the real simulation for every point.
    for key, serial_result in serial.items():
        assert not isinstance(outcomes[key], PointFailure)
        assert canonical(outcomes[key]) == canonical(serial_result)


# -- hung points ---------------------------------------------------------------------


def test_worker_side_deadline_fails_only_the_stalled_point():
    """A point stalling past its deadline on every attempt becomes a
    DeadlineExpiredError failure; its neighbours are untouched."""
    specs = quick_specs(1, 2, 4)
    victim = specs[1].spec_digest()
    backend = SupervisedPoolBackend(
        2,
        policy=RetryPolicy(max_retries=1),
        deadline_s=0.3,
        deadline_grace_s=60.0,  # host timer out of the way: in-worker alarm
        task_fn=functools.partial(stalling_task, victim),
    )
    with backend:
        outcomes = drain(backend.run(specs))
    assert backend.rebuilds == 0  # the alarm fired in the worker
    failure = outcomes[victim]
    assert isinstance(failure, PointFailure)
    assert failure.error == "DeadlineExpiredError"
    assert failure.attempts == 2
    healthy = [o for key, o in outcomes.items() if key != victim]
    assert healthy and not any(isinstance(o, PointFailure) for o in healthy)


def test_host_timer_reclaims_a_wedged_worker():
    """A worker that cannot deliver its own alarm is killed from the
    parent once deadline + grace elapses, and the point is failed."""
    backend = SupervisedPoolBackend(
        2,
        policy=RetryPolicy(max_retries=0),
        deadline_s=0.2,
        deadline_grace_s=0.3,
        task_fn=wedged_task,
        wait_tick_s=0.05,
    )
    start = time.monotonic()
    with backend:
        outcomes = drain(backend.run(quick_specs(1, 2)))
    elapsed = time.monotonic() - start
    assert elapsed < 60  # nobody waited for the 120 s sleep
    assert backend.rebuilds >= 1
    for outcome in outcomes.values():
        assert isinstance(outcome, PointFailure)
        assert outcome.error == "DeadlineExpiredError"


def test_empty_batch_is_a_no_op():
    backend = SupervisedPoolBackend(2)
    with backend:
        assert list(backend.run([])) == []
    assert backend.stats() == {"rebuilds": 0, "completed": 0, "degraded": 0}
