"""HTTP/1.1 framing: parsing limits, malformed input, response wire format."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.http import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    MAX_REQUEST_LINE,
    BadRequest,
    Request,
    Response,
    read_request,
)


def parse(wire: bytes):
    """Run read_request over an in-memory stream."""

    async def _go():
        reader = asyncio.StreamReader()
        reader.feed_data(wire)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(_go())


def parse_error(wire: bytes) -> BadRequest:
    with pytest.raises(BadRequest) as excinfo:
        parse(wire)
    return excinfo.value


# -- request parsing -----------------------------------------------------------------


def test_parses_a_simple_get():
    request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
    assert request.method == "GET"
    assert request.path == "/healthz"
    assert request.headers["host"] == "x"
    assert request.body == b""
    assert not request.wants_close


def test_parses_a_post_with_content_length_body():
    body = b'{"build":{}}'
    wire = (
        b"POST /run HTTP/1.1\r\n"
        b"Content-Type: application/json\r\n"
        + f"Content-Length: {len(body)}\r\n\r\n".encode()
        + body
    )
    request = parse(wire)
    assert request.method == "POST"
    assert request.body == body
    assert request.json() == {"build": {}}


def test_clean_eof_between_requests_returns_none():
    assert parse(b"") is None


def test_method_is_uppercased_and_query_is_stripped():
    request = parse(b"get /stats?pretty=1 HTTP/1.1\r\n\r\n")
    assert request.method == "GET"
    assert request.path == "/stats"


def test_connection_close_header_is_honoured():
    request = parse(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n")
    assert request.wants_close


@pytest.mark.parametrize("wire, status", [
    (b"NOT A REQUEST\r\n\r\n", 400),                  # too few tokens
    (b"GET /x SMTP/1.0\r\n\r\n", 400),                # not HTTP/1.x
    (b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n", 400),
    (b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
    (b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
    (b"GET /x HTTP/1.1\r\nTrunc", 400),               # EOF mid-headers
])
def test_malformed_requests_are_rejected(wire, status):
    assert parse_error(wire).status == status


def test_oversized_request_line_is_rejected():
    wire = b"GET /" + b"a" * MAX_REQUEST_LINE + b" HTTP/1.1\r\n\r\n"
    assert parse_error(wire).status == 413


def test_oversized_header_block_is_rejected():
    headers = b"".join(
        b"x-filler-%d: %s\r\n" % (i, b"v" * 1024) for i in range(40)
    )
    assert len(headers) > MAX_HEADER_BYTES
    wire = b"GET / HTTP/1.1\r\n" + headers + b"\r\n"
    assert parse_error(wire).status == 413


def test_oversized_body_is_rejected_before_reading_it():
    wire = (
        b"POST /run HTTP/1.1\r\n"
        + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
    )
    assert parse_error(wire).status == 413


def test_json_method_rejects_garbage_and_empty_bodies():
    request = Request("POST", "/run", {}, b"{nope")
    with pytest.raises(BadRequest) as excinfo:
        request.json()
    assert excinfo.value.status == 400
    with pytest.raises(BadRequest):
        Request("POST", "/run", {}, b"").json()


# -- response encoding ---------------------------------------------------------------


def test_response_wire_format_and_content_length():
    wire = Response.json(200, {"b": 1, "a": 2}).encode()
    head, _, body = wire.partition(b"\r\n\r\n")
    lines = head.decode("ascii").split("\r\n")
    assert lines[0] == "HTTP/1.1 200 OK"
    headers = dict(line.split(": ", 1) for line in lines[1:])
    assert headers["content-type"] == "application/json"
    assert int(headers["content-length"]) == len(body)
    assert headers["connection"] == "keep-alive"
    # Canonical JSON: sorted keys, no whitespace.
    assert body == b'{"a":2,"b":1}'


def test_equal_payloads_encode_to_equal_bytes():
    a = Response.json(200, json.loads('{"x": 1, "y": [1, 2]}')).encode()
    b = Response.json(200, {"y": [1, 2], "x": 1}).encode()
    assert a == b


def test_close_and_custom_headers_are_emitted():
    wire = Response.json(
        429, {"error": {}}, headers={"Retry-After": "3"}, close=True
    ).encode()
    head = wire.split(b"\r\n\r\n")[0].decode("ascii").lower()
    assert "http/1.1 429 too many requests" in head
    assert "connection: close" in head
    assert "retry-after: 3" in head
