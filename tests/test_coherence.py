"""The Berkeley coherence state machine shared by target and CLogP."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SystemConfig
from repro.core.coherence import CoherentMemory
from repro.memory import AddressSpace, LineState


def make_memory(nprocs=4, sets=4, assoc=2):
    config = SystemConfig(
        processors=nprocs,
        cache_size_bytes=sets * assoc * 32,
        cache_assoc=assoc,
    )
    space = AddressSpace(nprocs, config.block_bytes)
    space.alloc("data", 4096, 1, "interleaved")
    return CoherentMemory(config, space), space


def block_homed_at(space, node, offset=0):
    """A block id whose home is ``node`` (interleaved region)."""
    region = space.regions[0]
    return region.first_block + node + offset * space.nprocs


# -- reads ---------------------------------------------------------------------


def test_cold_read_from_local_memory():
    memory, space = make_memory()
    block = block_homed_at(space, 1)
    plan = memory.plan_read(1, block)
    assert not plan.hit
    assert plan.from_memory and plan.source == 1
    assert memory.caches[1].state_of(block) is LineState.VALID
    assert memory.directory.entry(block).sharers == {1}


def test_cold_read_from_remote_memory():
    memory, space = make_memory()
    block = block_homed_at(space, 2)
    plan = memory.plan_read(0, block)
    assert plan.source == 2 and plan.from_memory
    assert plan.home == 2


def test_read_hit_after_fill():
    memory, space = make_memory()
    block = block_homed_at(space, 2)
    memory.plan_read(0, block)
    plan = memory.plan_read(0, block)
    assert plan.hit


def test_read_source_classification_matches_plan():
    memory, space = make_memory()
    block = block_homed_at(space, 2)
    assert memory.read_source(0, block) == 2
    assert memory.read_source(2, block) is None


def test_read_from_dirty_owner_not_memory():
    memory, space = make_memory()
    block = block_homed_at(space, 0)
    memory.plan_write(3, block)  # 3 becomes owner (DIRTY)
    plan = memory.plan_read(1, block)
    assert plan.source == 3 and not plan.from_memory
    # Berkeley: owner keeps the block, now SHARED_DIRTY.
    assert memory.caches[3].state_of(block) is LineState.SHARED_DIRTY
    assert memory.caches[1].state_of(block) is LineState.VALID
    entry = memory.directory.entry(block)
    assert entry.owner == 3 and entry.sharers == {1, 3}


def test_remote_dirty_owner_forces_network_even_for_home():
    memory, space = make_memory()
    block = block_homed_at(space, 1)
    memory.plan_write(3, block)
    # Node 1 is the home, but memory is stale: data must come from 3.
    assert memory.read_source(1, block) == 3


# -- writes ----------------------------------------------------------------------


def test_write_miss_takes_ownership():
    memory, space = make_memory()
    block = block_homed_at(space, 2)
    plan = memory.plan_write(0, block)
    assert not plan.fast and not plan.had_data
    assert plan.source == 2 and plan.from_memory
    assert memory.caches[0].state_of(block) is LineState.DIRTY
    entry = memory.directory.entry(block)
    assert entry.owner == 0 and entry.sharers == {0}


def test_write_hit_on_dirty_is_fast():
    memory, space = make_memory()
    block = block_homed_at(space, 2)
    memory.plan_write(0, block)
    plan = memory.plan_write(0, block)
    assert plan.fast


def test_write_invalidates_sharers():
    memory, space = make_memory()
    block = block_homed_at(space, 0)
    memory.plan_read(1, block)
    memory.plan_read(2, block)
    plan = memory.plan_write(3, block)
    assert set(plan.invalidated) == {1, 2}
    assert memory.caches[1].state_of(block) is LineState.INVALID
    assert memory.caches[2].state_of(block) is LineState.INVALID
    assert memory.caches[3].state_of(block) is LineState.DIRTY


def test_upgrade_write_needs_no_data():
    memory, space = make_memory()
    block = block_homed_at(space, 0)
    memory.plan_read(1, block)
    plan = memory.plan_write(1, block)
    assert plan.had_data and plan.source is None
    assert memory.caches[1].state_of(block) is LineState.DIRTY


def test_write_fetches_from_previous_owner():
    memory, space = make_memory()
    block = block_homed_at(space, 0)
    memory.plan_write(1, block)
    plan = memory.plan_write(2, block)
    assert plan.source == 1 and not plan.from_memory
    assert plan.prev_owner == 1
    assert 1 in plan.invalidated
    assert memory.caches[1].state_of(block) is LineState.INVALID
    entry = memory.directory.entry(block)
    assert entry.owner == 2 and entry.sharers == {2}


def test_write_source_classification():
    memory, space = make_memory()
    block = block_homed_at(space, 1)
    assert memory.write_source(1, block) is None  # local home, clean
    assert memory.write_source(0, block) == 1  # remote home
    memory.plan_read(0, block)
    assert memory.write_source(0, block) is None  # valid copy held


# -- the paper's worked example (Section 3.2) ----------------------------------------


def test_paper_example_invalidation_then_reread():
    """Two valid copies; one writes; the other re-reads from the writer."""
    memory, space = make_memory()
    block = block_homed_at(space, 0)
    memory.plan_read(1, block)
    memory.plan_read(2, block)
    # Processor 1 writes: on both machines the copy at 2 goes INVALID.
    plan = memory.plan_write(1, block)
    assert 2 in plan.invalidated
    assert memory.caches[2].state_of(block) is LineState.INVALID
    # A read by 2 now needs the network on both machines: data is dirty
    # at processor 1.
    assert memory.read_source(2, block) == 1


# -- evictions -------------------------------------------------------------------------


def small_memory():
    """1-set, 1-way caches: every new block evicts."""
    return make_memory(nprocs=2, sets=1, assoc=1)


def test_clean_eviction_updates_sharers_silently():
    memory, space = small_memory()
    b1 = block_homed_at(space, 0, 0)
    b2 = block_homed_at(space, 0, 1)
    memory.plan_read(1, b1)
    plan = memory.plan_read(1, b2)
    assert plan.writeback is None  # clean victim: no writeback message
    assert 1 not in memory.directory.entry(b1).sharers


def test_dirty_eviction_requires_writeback():
    memory, space = small_memory()
    b1 = block_homed_at(space, 0, 0)
    b2 = block_homed_at(space, 0, 1)
    memory.plan_write(1, b1)
    plan = memory.plan_read(1, b2)
    assert plan.writeback == (b1, 0)
    entry = memory.directory.peek(b1)
    # Ownership returned to memory.
    assert entry is None or entry.owner is None


def test_eviction_then_refetch_comes_from_memory():
    memory, space = small_memory()
    b1 = block_homed_at(space, 0, 0)
    b2 = block_homed_at(space, 0, 1)
    memory.plan_write(1, b1)
    memory.plan_read(1, b2)  # evicts dirty b1 (written back)
    plan = memory.plan_read(1, b1)
    assert plan.from_memory  # memory is clean again


# -- invariants under random workloads (hypothesis) ------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.integers(0, 3),          # processor
            st.integers(0, 11),         # block offset
            st.booleans(),              # is_write
        ),
        min_size=1,
        max_size=200,
    )
)
def test_invariants_hold_under_random_traffic(operations):
    memory, space = make_memory(nprocs=4, sets=2, assoc=2)
    first = space.regions[0].first_block
    for pid, offset, is_write in operations:
        block = first + offset
        if is_write:
            memory.plan_write(pid, block)
        else:
            memory.plan_read(pid, block)
    memory.check_invariants()


@settings(max_examples=40, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 7), st.booleans()),
        min_size=1,
        max_size=120,
    )
)
def test_exactly_one_owner_and_dirty_is_exclusive(operations):
    memory, space = make_memory(nprocs=2, sets=1, assoc=2)
    first = space.regions[0].first_block
    for pid, offset, is_write in operations:
        block = first + offset
        if is_write:
            memory.plan_write(pid, block)
        else:
            memory.plan_read(pid, block)
        # Spot-check the written/read block immediately.
        holders = [
            p for p in range(2)
            if memory.caches[p].state_of(block).is_valid
        ]
        owners = [
            p for p in range(2)
            if memory.caches[p].state_of(block).is_owned
        ]
        assert len(owners) <= 1
        if is_write:
            assert memory.caches[pid].state_of(block) is LineState.DIRTY
            assert holders == [pid]
