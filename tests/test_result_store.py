"""ResultStore: on-disk caching, corruption quarantine, cache bypass."""

import json

import pytest

import repro.exec.backend as backend_module
from repro import RunSpec
from repro.exec import ResultStore
from repro.exec.store import QUARANTINE_SUFFIX, STORE_SCHEMA
from repro.experiments import SweepRunner, get_experiment, render_figure


@pytest.fixture
def counted_simulate(monkeypatch):
    """Count real simulations so cache hits are directly observable."""
    real_simulate = backend_module.simulate
    calls = {"count": 0}

    def counting(app, machine_name, config, **kwargs):
        calls["count"] += 1
        return real_simulate(app, machine_name, config, **kwargs)

    monkeypatch.setattr(backend_module, "simulate", counting)
    return calls


def quick_spec(**overrides) -> RunSpec:
    kwargs = dict(app="fft", machine="clogp", nprocs=2, preset="quick")
    kwargs.update(overrides)
    return RunSpec.build(**kwargs)


# -- direct store behaviour ---------------------------------------------------------


def test_get_put_round_trip(tmp_path):
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path / "cache")
    spec = quick_spec()
    assert store.get(spec) is None
    result = simulate_spec(spec)
    store.put(spec, result)
    cached = store.get(spec)
    assert cached is not None
    assert cached.to_dict() == result.to_dict()
    assert store.stats() == {"hits": 1, "misses": 1, "stores": 1,
                             "quarantined": 0}


def test_entries_are_keyed_by_spec_digest(tmp_path):
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path)
    spec = quick_spec()
    store.put(spec, simulate_spec(spec))
    # A different seed is a different spec: no aliasing.
    assert store.get(quick_spec(seed=999)) is None
    digest = spec.spec_digest()
    entry = tmp_path / digest[:2] / f"{digest}.json"
    assert entry.exists()
    payload = json.loads(entry.read_text())
    assert payload["schema"] == STORE_SCHEMA
    assert payload["spec_digest"] == digest
    assert payload["spec"] == spec.to_dict()


def test_corrupt_entry_is_quarantined_and_re_simulated(tmp_path,
                                                       counted_simulate):
    spec = quick_spec()
    digest = spec.spec_digest()
    with SweepRunner(preset="quick", cache_dir=tmp_path) as runner:
        runner.run_batch([spec])
    assert counted_simulate["count"] == 1
    entry = tmp_path / digest[:2] / f"{digest}.json"
    payload = entry.read_bytes()
    entry.write_bytes(payload[: len(payload) // 2])  # truncate mid-write

    with SweepRunner(preset="quick", cache_dir=tmp_path) as runner:
        runner.run_batch([spec])
        assert runner.store.quarantined == 1
    # The corrupt file was moved aside, the point re-simulated exactly
    # once, and the cache repaired with a fresh entry.
    assert counted_simulate["count"] == 2
    assert entry.with_name(entry.name + QUARANTINE_SUFFIX).exists()
    assert entry.exists()
    store = ResultStore(tmp_path)
    assert store.get(spec) is not None


def test_garbage_json_entry_is_quarantined(tmp_path):
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path)
    spec = quick_spec()
    store.put(spec, simulate_spec(spec))
    digest = spec.spec_digest()
    entry = tmp_path / digest[:2] / f"{digest}.json"
    entry.write_text("{not json")
    fresh = ResultStore(tmp_path)
    assert fresh.get(spec) is None
    assert fresh.quarantined == 1
    assert not entry.exists()


def test_wrong_digest_entry_is_quarantined(tmp_path):
    """An entry whose recorded digest disagrees with its path is
    corrupt -- serving it would attribute a result to the wrong spec."""
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path)
    spec = quick_spec()
    store.put(spec, simulate_spec(spec))
    digest = spec.spec_digest()
    entry = tmp_path / digest[:2] / f"{digest}.json"
    payload = json.loads(entry.read_text())
    payload["spec_digest"] = "0" * len(digest)
    entry.write_text(json.dumps(payload))
    fresh = ResultStore(tmp_path)
    assert fresh.get(spec) is None
    assert fresh.quarantined == 1


def test_foreign_schema_entry_is_a_plain_miss(tmp_path):
    """A different store schema is a version skew, not corruption: the
    entry is left in place for the other version and overwritten here."""
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path)
    spec = quick_spec()
    store.put(spec, simulate_spec(spec))
    digest = spec.spec_digest()
    entry = tmp_path / digest[:2] / f"{digest}.json"
    payload = json.loads(entry.read_text())
    payload["schema"] = STORE_SCHEMA + 1
    entry.write_text(json.dumps(payload))
    fresh = ResultStore(tmp_path)
    assert fresh.get(spec) is None
    assert fresh.quarantined == 0
    assert entry.exists()  # not moved aside


# -- integrity audit: checksums, verify, repair -------------------------------------


def test_entries_carry_a_content_checksum(tmp_path):
    from repro.core.runner import simulate_spec
    from repro.exec.store import entry_checksum

    store = ResultStore(tmp_path)
    spec = quick_spec()
    store.put(spec, simulate_spec(spec))
    digest = spec.spec_digest()
    payload = json.loads((tmp_path / digest[:2] / f"{digest}.json").read_text())
    # The checksum is recomputable from the parsed JSON: it survives the
    # round trip through text, which is what makes reads verifiable.
    assert payload["checksum"] == entry_checksum(payload)


def test_bit_flip_anywhere_in_the_result_is_caught(tmp_path):
    """The checksum covers the result values themselves -- a flipped
    digit in a metric is corruption, even though the JSON still parses
    and the spec digest still matches."""
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path)
    spec = quick_spec()
    store.put(spec, simulate_spec(spec))
    digest = spec.spec_digest()
    entry = tmp_path / digest[:2] / f"{digest}.json"
    payload = json.loads(entry.read_text())
    payload["result"]["total_ns"] = payload["result"]["total_ns"] + 1
    entry.write_text(json.dumps(payload))
    fresh = ResultStore(tmp_path)
    assert fresh.get(spec) is None
    assert fresh.quarantined == 1


def test_verify_reports_a_healthy_store(tmp_path):
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path)
    for seed in (1, 2, 3):
        spec = quick_spec(seed=seed)
        store.put(spec, simulate_spec(spec))
    report = store.verify()
    assert report.scanned == 3 and report.ok == 3
    assert report.healthy
    assert not report.corrupt
    assert "3 ok" in report.summary()


def test_verify_quarantines_corruption_without_repair(tmp_path):
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path)
    spec = quick_spec()
    store.put(spec, simulate_spec(spec))
    digest = spec.spec_digest()
    entry = tmp_path / digest[:2] / f"{digest}.json"
    data = bytearray(entry.read_bytes())
    data[len(data) // 2] ^= 0xFF
    entry.write_bytes(bytes(data))

    report = ResultStore(tmp_path).verify(repair=False)
    assert report.corrupt == [digest]
    assert not report.repaired and not report.healthy
    assert not entry.exists()  # moved aside
    assert entry.with_name(entry.name + QUARANTINE_SUFFIX).exists()


def test_verify_repair_restores_bit_identical_entries(tmp_path):
    """--repair re-simulates a corrupt entry from its embedded spec and
    the rewritten entry is bit-identical (determinism) to the original,
    modulo the host-measured wall time."""
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path)
    spec = quick_spec()
    store.put(spec, simulate_spec(spec))
    digest = spec.spec_digest()
    entry = tmp_path / digest[:2] / f"{digest}.json"
    original = json.loads(entry.read_text())
    # Corrupt only the result values; the embedded spec stays intact,
    # which is what makes the entry repairable.
    damaged = dict(original)
    damaged["result"] = dict(original["result"], total_ns=0)
    entry.write_text(json.dumps(damaged))

    resimulated = []

    def counting_simulate(recovered_spec):
        resimulated.append(recovered_spec.spec_digest())
        return simulate_spec(recovered_spec)

    report = ResultStore(tmp_path).verify(repair=True,
                                          simulate=counting_simulate)
    assert report.corrupt == [digest]
    assert report.repaired == [digest]
    assert not report.unrepairable
    assert report.healthy
    assert resimulated == [digest]  # exactly the damaged point, once
    repaired = json.loads(entry.read_text())
    original["result"].pop("wall_seconds")
    repaired["result"].pop("wall_seconds")
    assert repaired["result"] == original["result"]
    assert ResultStore(tmp_path).get(spec) is not None


def test_verify_repair_reports_unrepairable_garbage(tmp_path):
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path)
    spec = quick_spec()
    store.put(spec, simulate_spec(spec))
    digest = spec.spec_digest()
    entry = tmp_path / digest[:2] / f"{digest}.json"
    entry.write_text("{totally-not-json")  # no spec left to recover

    report = ResultStore(tmp_path).verify(repair=True)
    assert report.corrupt == [digest]
    assert report.unrepairable == [digest]
    assert not report.repaired
    assert not report.healthy
    assert "unrepairable" in report.summary()


def test_repair_recovers_entries_quarantined_by_an_earlier_scan(tmp_path):
    """verify-then-repair must heal as much as a single --repair pass:
    the first scan quarantines the rot, the second mines the
    quarantined file for its spec and re-simulates."""
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path)
    spec = quick_spec()
    store.put(spec, simulate_spec(spec))
    digest = spec.spec_digest()
    entry = tmp_path / digest[:2] / f"{digest}.json"
    payload = json.loads(entry.read_text())
    payload["result"]["total_ns"] = 0  # checksum now fails
    entry.write_text(json.dumps(payload))

    first = ResultStore(tmp_path).verify(repair=False)
    assert first.corrupt == [digest] and not first.healthy
    assert not entry.exists()

    second = ResultStore(tmp_path).verify(repair=True)
    assert second.corrupt == [digest]
    assert second.repaired == [digest]
    assert second.healthy
    assert entry.exists()
    assert ResultStore(tmp_path).get(spec) is not None


def test_verify_skips_quarantined_and_foreign_schema_files(tmp_path):
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path)
    good = quick_spec(seed=1)
    store.put(good, simulate_spec(good))
    stale = quick_spec(seed=2)
    store.put(stale, simulate_spec(stale))
    digest = stale.spec_digest()
    entry = tmp_path / digest[:2] / f"{digest}.json"
    payload = json.loads(entry.read_text())
    payload["schema"] = STORE_SCHEMA + 1
    entry.write_text(json.dumps(payload))
    # A leftover quarantine file from an earlier incident.
    (entry.parent / ("dead.json" + QUARANTINE_SUFFIX)).write_text("junk")

    report = ResultStore(tmp_path).verify()
    assert report.scanned == 2
    assert report.ok == 1
    assert report.stale == 1
    assert report.healthy


# -- sweep-runner integration -------------------------------------------------------


def test_warm_store_performs_zero_simulations(tmp_path, counted_simulate):
    """The acceptance check: a second invocation against a warm store
    answers every point from disk and simulates nothing."""
    experiment = get_experiment("fig01")
    with SweepRunner(preset="quick", processors=(1, 4),
                     cache_dir=tmp_path) as cold:
        cold_data = cold.run_experiment(experiment)
        assert cold.simulated == counted_simulate["count"] > 0

    cold_count = counted_simulate["count"]
    with SweepRunner(preset="quick", processors=(1, 4),
                     cache_dir=tmp_path) as warm:
        warm_data = warm.run_experiment(experiment)
        assert warm.simulated == 0
        assert warm.store.hits == cold_count
    assert counted_simulate["count"] == cold_count  # zero new simulations
    assert warm_data.series == cold_data.series
    assert render_figure(warm_data) == render_figure(cold_data)


def test_warm_store_serves_parallel_backend(tmp_path, counted_simulate):
    """Cache entries written by a serial run satisfy a --jobs 2 run."""
    experiment = get_experiment("fig01")
    with SweepRunner(preset="quick", processors=(1, 4),
                     cache_dir=tmp_path) as cold:
        cold_data = cold.run_experiment(experiment)
    cold_count = counted_simulate["count"]
    with SweepRunner(preset="quick", processors=(1, 4), jobs=2,
                     cache_dir=tmp_path) as warm:
        warm_data = warm.run_experiment(experiment)
        assert warm.simulated == 0
    assert counted_simulate["count"] == cold_count
    assert warm_data.series == cold_data.series


def test_no_cache_dir_means_no_cache_files(tmp_path, counted_simulate):
    with SweepRunner(preset="quick", processors=(1,)) as runner:
        runner.run_point("fft", "clogp", "full", 1)
        assert runner.store is None
    assert list(tmp_path.iterdir()) == []
    assert counted_simulate["count"] == 1


def test_failures_are_not_cached(tmp_path, monkeypatch):
    """Failures may be transient (host trouble, interrupted runs), so
    only successful results are persisted."""
    from repro.errors import RetryLimitError
    from repro.exec import PointFailure

    def dying(app, machine_name, config, **kwargs):
        raise RetryLimitError(0, 1, 3, 12345)

    monkeypatch.setattr(backend_module, "simulate", dying)
    spec = quick_spec()
    with SweepRunner(preset="quick", cache_dir=tmp_path) as runner:
        runner.run_batch([spec])
        assert isinstance(runner.outcome_of(spec), PointFailure)
        assert runner.store.stores == 0
    digest = spec.spec_digest()
    assert not (tmp_path / digest[:2] / f"{digest}.json").exists()
