"""Explicit message passing (SPASM's second platform paradigm)."""

import pytest

from repro import SystemConfig
from repro.core import ops
from repro.core.machine import Processor, make_machine
from repro.errors import DeadlockError, SimulationError
from repro.units import us

ALL_MACHINES = ("target", "logp", "clogp", "ideal")


def build(machine_name, nprocs=4, topology="full", **overrides):
    config = SystemConfig(processors=nprocs, topology=topology, **overrides)
    return make_machine(machine_name, config)


def run_programs(machine, programs):
    processors = [Processor(machine, pid) for pid in range(machine.nprocs)]
    machine.processors = processors
    for pid, program in programs.items():
        machine.sim.spawn(processors[pid].run(iter(program)))
    machine.sim.run()
    return processors


# -- semantics ---------------------------------------------------------------------


@pytest.mark.parametrize("machine_name", ALL_MACHINES)
def test_recv_blocks_until_send(machine_name):
    machine = build(machine_name)
    done = {}

    def sender():
        yield ops.Compute(10_000)
        yield ops.Send(1, 32)

    def receiver():
        yield ops.Recv(0)
        done["at"] = machine.sim.now

    run_programs(machine, {0: sender(), 1: receiver()})
    assert done["at"] >= 10_000 * 30


@pytest.mark.parametrize("machine_name", ALL_MACHINES)
def test_eager_send_buffers(machine_name):
    """A send completes without a matching receive; the receive later
    finds the buffered message immediately."""
    machine = build(machine_name)

    def sender():
        yield ops.Send(1, 32)
        yield ops.Send(1, 32)

    def receiver():
        yield ops.Compute(50_000)
        yield ops.Recv(0)
        yield ops.Recv(0)

    processors = run_programs(machine, {0: sender(), 1: receiver()})
    # The receiver never blocked (both messages long since arrived).
    assert processors[1].buckets.sync_ns == 0


def test_tags_separate_channels():
    machine = build("ideal")
    order = []

    def sender():
        yield ops.Send(1, 8, tag=7)
        yield ops.Send(1, 8, tag=3)

    def receiver():
        yield ops.Recv(0, tag=3)
        order.append(3)
        yield ops.Recv(0, tag=7)
        order.append(7)

    run_programs(machine, {0: sender(), 1: receiver()})
    assert order == [3, 7]


def test_missing_send_deadlocks():
    machine = build("ideal")

    def receiver():
        yield ops.Recv(2)

    with pytest.raises(DeadlockError):
        run_programs(machine, {0: receiver()})


def test_invalid_peer_rejected():
    machine = build("ideal")

    def bad():
        yield ops.Send(9, 8)

    with pytest.raises(SimulationError):
        run_programs(machine, {0: bad()})


def test_send_op_validation():
    with pytest.raises(ValueError):
        ops.Send(1, 0)


# -- timing --------------------------------------------------------------------------


def test_target_send_pays_transmission():
    machine = build("target")

    def sender():
        yield ops.Send(1, 32)

    def receiver():
        yield ops.Recv(0)

    processors = run_programs(machine, {0: sender(), 1: receiver()})
    assert processors[0].buckets.latency_ns == us(1.6)


def test_large_messages_packetize():
    machine = build("target")

    def sender():
        yield ops.Send(1, 128)  # 4 packets of 32 bytes

    def receiver():
        yield ops.Recv(0)

    processors = run_programs(machine, {0: sender(), 1: receiver()})
    assert processors[0].buckets.latency_ns == 4 * us(1.6)
    assert machine.fabric.messages == 4


def test_logp_send_is_one_L_plus_gating():
    # Mesh with 16 processors: g = 3.2us exceeds L = 1.6us, so a
    # blocking sender issuing back-to-back messages stalls on its gate.
    machine = build("logp", nprocs=16, topology="mesh")

    def sender():
        yield ops.Send(2, 32)
        yield ops.Send(2, 32)  # gated behind the first

    def receiver():
        yield ops.Recv(0)
        yield ops.Recv(0)

    processors = run_programs(machine, {0: sender(), 2: receiver()})
    assert processors[0].buckets.latency_ns == 2 * us(1.6)
    assert processors[0].buckets.contention_ns > 0  # the g stall


def test_ideal_send_is_free():
    machine = build("ideal")

    def sender():
        yield ops.Send(1, 32)

    def receiver():
        yield ops.Recv(0)

    processors = run_programs(machine, {0: sender(), 1: receiver()})
    assert processors[0].buckets.latency_ns == 0


def test_self_send_is_local():
    machine = build("target")

    def prog():
        yield ops.Send(0, 32)
        yield ops.Recv(0)

    processors = run_programs(machine, {0: prog()})
    assert machine.fabric.messages == 0
    assert processors[0].finish_ns < us(10)


# -- a small message-passing program across machines -------------------------------------


@pytest.mark.parametrize("machine_name", ALL_MACHINES)
def test_ring_pipeline(machine_name):
    """Token passed around a ring; total time grows with the ring."""
    machine = build(machine_name, nprocs=8, topology="cube")

    def stage(pid):
        if pid != 0:
            yield ops.Recv(pid - 1)
        yield ops.Compute(100)
        yield ops.Send((pid + 1) % 8, 32)
        if pid == 0:
            yield ops.Recv(7)

    processors = run_programs(machine, {pid: stage(pid) for pid in range(8)})
    finish = max(p.finish_ns for p in processors)
    assert finish >= 8 * 100 * 30  # at least the serialized compute
    assert machine.mp_sends == 8


def test_trace_roundtrip_of_mp_ops():
    from repro.trace.tracefile import deserialize_op, serialize_op

    send = ops.Send(3, 64, tag=2)
    recv = ops.Recv(3, tag=2)
    assert repr(deserialize_op(serialize_op(send))) == repr(send)
    assert repr(deserialize_op(serialize_op(recv))) == repr(recv)
