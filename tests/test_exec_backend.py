"""Execution backends: serial/process-pool parity and retry semantics.

The contract under test is the one that justifies the whole execution
layer: a run is a pure function of its :class:`~repro.runspec.RunSpec`,
so a worker process must produce bit-identical results -- series
values, overhead buckets, message counts, *and* determinism digests --
to an in-process run.  The only field allowed to differ is the measured
``wall_seconds``.
"""

import json
from pathlib import Path

import pytest

import repro.exec.backend as backend_module
from repro import FaultConfig, RunSpec
from repro.errors import ConfigError, RetryLimitError
from repro.exec import (
    PointFailure,
    ProcessPoolBackend,
    SerialBackend,
    execute_spec,
    make_backend,
)
from repro.exec.backend import drain
from repro.experiments import SweepRunner, get_experiment

GOLDEN_PATH = Path(__file__).parent / "goldens" / "digests.json"


def canonical(result) -> dict:
    """A result's bit-comparable form (wall time is a host artifact)."""
    data = result.to_dict()
    data.pop("wall_seconds")
    return data


def golden_spec(machine: str, topology: str) -> RunSpec:
    """The golden-digest workload (see test_goldens.py) as a RunSpec."""
    golden = json.loads(GOLDEN_PATH.read_text())
    workload = golden["workload"]
    return RunSpec.build(
        app=workload["app"], machine=machine, nprocs=workload["nprocs"],
        topology=topology, params=workload["params"], digest=True,
    )


# -- backend construction ------------------------------------------------------------


def test_make_backend_selects_by_jobs():
    assert isinstance(make_backend(1), SerialBackend)
    assert isinstance(make_backend(4), ProcessPoolBackend)
    assert make_backend(4).jobs == 4


def test_process_pool_rejects_single_job():
    with pytest.raises(ConfigError, match="at least 2"):
        ProcessPoolBackend(1)


def test_serial_backend_streams_lazily(monkeypatch):
    """Points execute as the stream is consumed, not all up front --
    the property incremental checkpointing relies on."""
    calls = {"count": 0}
    real_simulate = backend_module.simulate

    def counting(app, machine_name, config, **kwargs):
        calls["count"] += 1
        return real_simulate(app, machine_name, config, **kwargs)

    monkeypatch.setattr(backend_module, "simulate", counting)
    specs = [
        RunSpec.build("fft", "ideal", 2, preset="quick"),
        RunSpec.build("fft", "ideal", 4, preset="quick"),
    ]
    stream = SerialBackend().run(specs)
    assert calls["count"] == 0
    next(stream)
    assert calls["count"] == 1
    next(stream)
    assert calls["count"] == 2


# -- retry / failure semantics -------------------------------------------------------


def test_execute_spec_retries_then_records_failure(monkeypatch):
    calls = {"count": 0}

    def dying(app, machine_name, config, **kwargs):
        calls["count"] += 1
        raise RetryLimitError(0, 1, 3, 12345)

    monkeypatch.setattr(backend_module, "simulate", dying)
    outcome = execute_spec(RunSpec.build("fft", "logp", 2, preset="quick"),
                           retries=2)
    assert isinstance(outcome, PointFailure)
    assert outcome.attempts == 3  # initial + two retries
    assert calls["count"] == 3
    assert outcome.error == "RetryLimitError"


def test_execute_spec_recovers_on_retry(monkeypatch):
    real_simulate = backend_module.simulate
    calls = {"count": 0}

    def flaky_once(app, machine_name, config, **kwargs):
        calls["count"] += 1
        if calls["count"] == 1:
            raise RetryLimitError(0, 1, 3, 12345)
        return real_simulate(app, machine_name, config, **kwargs)

    monkeypatch.setattr(backend_module, "simulate", flaky_once)
    outcome = execute_spec(RunSpec.build("fft", "ideal", 2, preset="quick"),
                           retries=1)
    assert not isinstance(outcome, PointFailure)
    assert outcome.verified


def test_point_failure_round_trips_through_dict():
    """Failures are journaled to checkpoints as JSON; the round trip
    must be lossless."""
    failure = PointFailure(
        app="fft", machine="logp", topology="mesh", nprocs=8,
        error="DeadlineExpiredError",
        message="run exceeded its 5 s wall-clock deadline",
        attempts=3,
    )
    restored = PointFailure.from_dict(failure.to_dict())
    assert restored == failure
    # And through actual JSON text, as the checkpoint file does it.
    rehydrated = PointFailure.from_dict(json.loads(json.dumps(failure.to_dict())))
    assert rehydrated == failure
    assert "DeadlineExpiredError" in failure.summary()


# -- serial vs process-pool parity (satellite: parallel determinism) -----------------


@pytest.mark.parametrize("topology", ("full", "mesh"))
def test_pool_matches_serial_and_goldens(topology):
    """Worker processes must reproduce the golden determinism digests
    and bit-identical results for target and clogp machines."""
    specs = [golden_spec(machine, topology) for machine in ("target", "clogp")]
    serial = drain(SerialBackend().run(specs))
    with ProcessPoolBackend(2) as pool:
        parallel = drain(pool.run(specs))
    goldens = json.loads(GOLDEN_PATH.read_text())["digests"]
    for spec in specs:
        key = spec.spec_digest()
        serial_result, pool_result = serial[key], parallel[key]
        assert canonical(pool_result) == canonical(serial_result)
        golden = goldens[f"{spec.machine}/{spec.config.topology}"]
        assert serial_result.check_report.digest == golden
        assert pool_result.check_report.digest == golden


def test_pool_matches_serial_under_fault_injection():
    """With a fixed fault seed, recovery schedules are deterministic,
    so parallel execution must still be bit-identical -- including the
    determinism digest of the faulted run."""
    fault = FaultConfig(drop_rate=0.02, delay_rate=0.02, seed=1234)
    specs = [
        RunSpec.build("fft", machine, 4, preset="quick", fault=fault,
                      digest=True)
        for machine in ("target", "clogp")
    ]
    serial = drain(SerialBackend().run(specs))
    with ProcessPoolBackend(2) as pool:
        parallel = drain(pool.run(specs))
    for key, serial_result in serial.items():
        assert canonical(parallel[key]) == canonical(serial_result)
        assert (parallel[key].check_report.digest
                == serial_result.check_report.digest)
        assert serial_result.check_report.digest is not None


def test_pool_reports_point_failures_like_serial():
    """A run that deterministically exhausts its ARQ retries must come
    back as the same PointFailure from a worker process."""
    fault = FaultConfig(drop_rate=0.9, max_retries=1, seed=42)
    spec = RunSpec.build("fft", "clogp", 2, preset="quick", fault=fault)
    serial = execute_spec(spec, retries=1)
    with ProcessPoolBackend(2) as pool:
        ((_, parallel),) = list(pool.run([spec], retries=1))
    assert isinstance(serial, PointFailure)
    assert parallel == serial


# -- sweep-runner level parity -------------------------------------------------------


def figure_fingerprint(runner: SweepRunner, experiment_id: str):
    data = runner.run_experiment(get_experiment(experiment_id))
    digests = {
        label: [
            None if isinstance(outcome, PointFailure)
            else outcome.check_report.digest
            for outcome in outcomes
        ]
        for label, outcomes in data.results.items()
    }
    return data.series, digests


def test_sweep_runner_jobs2_matches_serial():
    """A quick-preset figure under --jobs 2 must produce bit-identical
    series values and per-run determinism digests to the serial path."""
    with SweepRunner(preset="quick", processors=(1, 4),
                     digest=True) as serial:
        serial_series, serial_digests = figure_fingerprint(serial, "fig01")
    with SweepRunner(preset="quick", processors=(1, 4), digest=True,
                     jobs=2) as parallel:
        parallel_series, parallel_digests = figure_fingerprint(
            parallel, "fig01")
    assert parallel_series == serial_series
    assert parallel_digests == serial_digests
    assert all(d is not None
               for row in serial_digests.values() for d in row)


def test_sweep_runner_jobs2_matches_serial_under_faults():
    fault = FaultConfig(drop_rate=0.02, seed=9)
    with SweepRunner(preset="quick", processors=(1, 4), digest=True,
                     fault=fault) as serial:
        serial_series, serial_digests = figure_fingerprint(serial, "fig03")
    with SweepRunner(preset="quick", processors=(1, 4), digest=True,
                     fault=fault, jobs=2) as parallel:
        parallel_series, parallel_digests = figure_fingerprint(
            parallel, "fig03")
    assert parallel_series == serial_series
    assert parallel_digests == serial_digests
