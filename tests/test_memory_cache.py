"""Set-associative cache with LRU replacement (incl. model-based test)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.memory import Cache, LineState


def test_miss_then_hit():
    cache = Cache(sets=4, assoc=2)
    assert cache.lookup(10) is None
    cache.install(10, LineState.VALID)
    line = cache.lookup(10)
    assert line is not None and line.state is LineState.VALID
    assert cache.hits == 1 and cache.misses == 1


def test_state_of_does_not_touch_counters():
    cache = Cache(sets=4, assoc=2)
    assert cache.state_of(10) is LineState.INVALID
    assert cache.misses == 0


def test_set_mapping():
    cache = Cache(sets=4, assoc=2)
    assert cache.set_index(0) == 0
    assert cache.set_index(5) == 1
    assert cache.set_index(7) == 3


def test_lru_eviction_within_set():
    cache = Cache(sets=1, assoc=2)
    cache.install(1, LineState.VALID)
    cache.install(2, LineState.VALID)
    cache.lookup(1)  # make 2 the LRU
    victim = cache.install(3, LineState.VALID)
    assert victim == (2, LineState.VALID)
    assert cache.contains(1) and cache.contains(3)
    assert not cache.contains(2)


def test_install_over_resident_updates_state_without_eviction():
    cache = Cache(sets=1, assoc=2)
    cache.install(1, LineState.VALID)
    victim = cache.install(1, LineState.DIRTY)
    assert victim is None
    assert cache.state_of(1) is LineState.DIRTY
    assert cache.resident_blocks == 1


def test_cannot_install_invalid():
    cache = Cache(sets=1, assoc=2)
    with pytest.raises(ProtocolError):
        cache.install(1, LineState.INVALID)


def test_invalidate():
    cache = Cache(sets=2, assoc=2)
    cache.install(4, LineState.SHARED_DIRTY)
    assert cache.invalidate(4) is LineState.SHARED_DIRTY
    assert cache.state_of(4) is LineState.INVALID
    # Idempotent.
    assert cache.invalidate(4) is LineState.INVALID


def test_set_state():
    cache = Cache(sets=2, assoc=2)
    cache.install(4, LineState.VALID)
    cache.set_state(4, LineState.DIRTY)
    assert cache.state_of(4) is LineState.DIRTY
    cache.set_state(4, LineState.INVALID)
    assert not cache.contains(4)


def test_set_state_on_absent_block_raises():
    cache = Cache(sets=2, assoc=2)
    with pytest.raises(ProtocolError):
        cache.set_state(9, LineState.DIRTY)


def test_dirty_eviction_counted():
    cache = Cache(sets=1, assoc=1)
    cache.install(1, LineState.DIRTY)
    victim = cache.install(2, LineState.VALID)
    assert victim == (1, LineState.DIRTY)
    assert cache.dirty_evictions == 1
    assert cache.evictions == 1


def test_hit_rate():
    cache = Cache(sets=4, assoc=2)
    assert cache.hit_rate() == 0.0
    cache.lookup(1)
    cache.install(1, LineState.VALID)
    cache.lookup(1)
    assert cache.hit_rate() == 0.5


def test_blocks_in_different_sets_do_not_evict_each_other():
    cache = Cache(sets=4, assoc=1)
    for block in range(4):
        assert cache.install(block, LineState.VALID) is None
    assert cache.resident_blocks == 4


def test_line_states_properties():
    assert not LineState.INVALID.is_valid
    assert LineState.VALID.is_valid
    assert LineState.SHARED_DIRTY.is_owned
    assert LineState.DIRTY.is_owned
    assert not LineState.VALID.is_owned
    assert LineState.DIRTY.is_writable
    assert not LineState.SHARED_DIRTY.is_writable


class _ReferenceCache:
    """Trivially correct LRU model to check the real cache against."""

    def __init__(self, sets, assoc):
        self.sets = sets
        self.assoc = assoc
        self.contents = {s: [] for s in range(sets)}  # MRU last

    def lookup(self, block):
        content = self.contents[block % self.sets]
        if block in content:
            content.remove(block)
            content.append(block)
            return True
        return False

    def install(self, block):
        content = self.contents[block % self.sets]
        victim = None
        if block in content:
            content.remove(block)
        elif len(content) >= self.assoc:
            victim = content.pop(0)
        content.append(block)
        return victim


@settings(max_examples=80, deadline=None)
@given(
    geometry=st.sampled_from([(1, 1), (1, 2), (2, 2), (4, 2), (2, 4)]),
    blocks=st.lists(st.integers(0, 20), min_size=1, max_size=120),
)
def test_lru_matches_reference_model(geometry, blocks):
    sets, assoc = geometry
    cache = Cache(sets=sets, assoc=assoc)
    model = _ReferenceCache(sets, assoc)
    for block in blocks:
        real_hit = cache.lookup(block) is not None
        model_hit = model.lookup(block)
        assert real_hit == model_hit
        if not real_hit:
            victim = cache.install(block, LineState.VALID)
            model_victim = model.install(block)
            real_victim = victim[0] if victim else None
            assert real_victim == model_victim
    # Residency agrees at the end.
    for s in range(sets):
        assert sorted(model.contents[s]) == sorted(
            line.block for line in cache._lines[s]
        )
