"""The Jacobi locality-probe application (suite extension)."""

import numpy as np
import pytest

from repro import SystemConfig, simulate
from repro.apps import make_app
from repro.apps.jacobi import relax


def run(machine, nprocs=8, topology="mesh", **config_overrides):
    config = SystemConfig(processors=nprocs, topology=topology,
                          **config_overrides)
    app = make_app("jacobi", nprocs, n=1_024, sweeps=3)
    return app, simulate(app, machine, config, check_invariants=True)


def test_relax_preserves_constants():
    values = np.full(16, 3.5)
    assert np.allclose(relax(values), values)


def test_relax_smooths():
    values = np.zeros(32)
    values[16] = 1.0
    smoothed = relax(values)
    assert smoothed[16] < 1.0
    assert smoothed[15] > 0 and smoothed[17] > 0


@pytest.mark.parametrize("machine", ["target", "clogp", "logp", "ideal"])
def test_jacobi_verifies(machine):
    _app, result = run(machine)
    assert result.verified


def test_jacobi_parameter_validation():
    with pytest.raises(ValueError):
        make_app("jacobi", 8, n=4)
    with pytest.raises(ValueError):
        make_app("jacobi", 2, sweeps=0)


def test_jacobi_halo_traffic_is_tiny():
    """Two halo elements per processor per sweep: almost no traffic."""
    _app, result = run("clogp")
    # 8 procs x 3 sweeps x <=2 halo misses, x2 messages, plus barrier
    # and cold-fill traffic; the point is it is orders below the grid size.
    assert result.messages < 1_024


def test_jacobi_g_pessimism_is_extreme():
    """Nearest-neighbour traffic: bisection-g overshoots the most."""
    _a, target = run("target")
    _b, clogp = run("clogp")
    assert clogp.mean_contention_us > 3.0 * max(
        target.mean_contention_us, 1.0
    )


def test_adaptive_g_tracks_the_traffic_mix():
    """Jacobi's *data* traffic is one-hop, but its barrier traffic is
    scattered across the machine; the history-based g correctly
    reflects the mix instead of blindly discounting, so the strict and
    adaptive runs land close together (contrast with EP, where the
    traffic is genuinely local and adaptive g helps -- see
    test_adaptive_g.py)."""
    _a, strict = run("clogp")
    _b, adaptive = run("clogp", adaptive_g=True)
    assert adaptive.mean_contention_us <= 1.15 * strict.mean_contention_us


def test_pure_halo_traffic_gets_discounted_g():
    """Without synchronization in the mix, neighbour traffic alone
    drives the adaptive factor well below 1."""
    from repro.core.machine import Processor, make_machine
    from repro.core import ops

    def contention(adaptive):
        config = SystemConfig(processors=8, topology="mesh",
                              adaptive_g=adaptive)
        machine = make_machine("clogp", config)
        array = machine.space.alloc(
            "grid", 1_024, 8, "blocked", align_blocks_per_proc=True
        )
        per = 1_024 // 8

        def program(pid):
            for i in range(40):
                # Read a rotating element of the neighbour's chunk.
                neighbour = (pid + 1) % 8
                yield ops.Read(array.addr(neighbour * per + (i * 4) % per))

        processors = [Processor(machine, pid) for pid in range(8)]
        machine.processors = processors
        for pid, processor in enumerate(processors):
            machine.sim.spawn(processor.run(program(pid)))
        machine.sim.run()
        return sum(p.buckets.contention_ns for p in processors)

    assert contention(adaptive=True) < contention(adaptive=False)
