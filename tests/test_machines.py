"""Machine-model semantics: costs and traffic per machine.

These tests run small hand-written operation programs on each machine
and check the paper-defining behaviours: where the network is touched,
what a miss costs, what coherence actions cost (and, on CLogP, that
they cost nothing).
"""

import pytest

from repro import SystemConfig
from repro.core import ops
from repro.core.machine import Processor, make_machine, machine_names
from repro.units import us


def build(machine_name, nprocs=4, topology="full", **overrides):
    config = SystemConfig(processors=nprocs, topology=topology, **overrides)
    machine = make_machine(machine_name, config)
    array = machine.space.alloc("data", 1024, 8, "interleaved")
    return machine, array


def run_programs(machine, programs):
    """programs: pid -> iterable of ops.  Returns the processors."""
    processors = [Processor(machine, pid) for pid in range(machine.nprocs)]
    machine.processors = processors
    for pid, program in programs.items():
        machine.sim.spawn(processors[pid].run(iter(program)), name=f"cpu{pid}")
    machine.sim.run()
    return processors


def addr_homed_at(machine, array, node, offset=0):
    """Address of an element whose block is homed at ``node``."""
    block_elems = machine.config.block_bytes // array.elem_bytes
    index = (node + offset * machine.nprocs) * block_elems
    addr = array.addr(index)
    assert machine.space.home_of(addr) == node
    return addr


# -- registry ---------------------------------------------------------------------


def test_machine_registry():
    assert machine_names() == ["clogp", "ideal", "logp", "target"]


def test_unknown_machine():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        make_machine("pram", SystemConfig())


# -- ideal machine -------------------------------------------------------------------


def test_ideal_charges_hit_time_for_everything():
    machine, array = build("ideal")
    remote = addr_homed_at(machine, array, 3)
    [p0] = run_programs(machine, {0: [ops.Read(remote), ops.Write(remote)]})[:1]
    assert p0.buckets.memory_ns == 2 * machine.config.cache_hit_ns
    assert p0.buckets.latency_ns == 0
    assert machine.message_count() == 0


def test_ideal_compute_charged_in_cycles():
    machine, array = build("ideal")
    [p0] = run_programs(machine, {0: [ops.Compute(100)]})[:1]
    assert p0.buckets.compute_ns == 100 * 30


# -- LogP machine ---------------------------------------------------------------------


def test_logp_local_reference_costs_memory_time():
    machine, array = build("logp")
    local = addr_homed_at(machine, array, 0)
    [p0] = run_programs(machine, {0: [ops.Read(local)]})[:1]
    assert p0.buckets.memory_ns == machine.config.memory_ns
    assert p0.buckets.latency_ns == 0
    assert machine.message_count() == 0


def test_logp_remote_reference_is_a_round_trip():
    machine, array = build("logp")
    remote = addr_homed_at(machine, array, 2)
    [p0] = run_programs(machine, {0: [ops.Read(remote)]})[:1]
    assert p0.buckets.latency_ns == 2 * us(1.6)
    assert p0.buckets.memory_ns == machine.config.memory_ns
    assert machine.message_count() == 2


def test_logp_has_no_cache_rereads_pay_again():
    machine, array = build("logp")
    remote = addr_homed_at(machine, array, 2)
    [p0] = run_programs(machine, {0: [ops.Read(remote)] * 5})[:1]
    assert p0.buckets.latency_ns == 5 * 2 * us(1.6)
    assert machine.message_count() == 10


def test_logp_g_stalls_charged_to_contention():
    # Mesh with 4 procs: g = 0.8 * 2 cols = 1.6us; back-to-back remote
    # reads stall on the sender gate.
    machine, array = build("logp", topology="mesh")
    remote = addr_homed_at(machine, array, 2)
    other = addr_homed_at(machine, array, 3)
    [p0] = run_programs(machine, {0: [ops.Read(remote), ops.Read(other)]})[:1]
    assert p0.buckets.contention_ns > 0


def test_logp_range_of_remote_items_pays_per_item():
    """FFT's 4x effect: every 8-byte item is a separate network access."""
    machine, array = build("logp")
    base = addr_homed_at(machine, array, 2)
    [p0] = run_programs(
        machine, {0: [ops.ReadRange(base, 4, 8)]}
    )[:1]
    assert p0.buckets.latency_ns == 4 * 2 * us(1.6)


# -- CLogP machine ----------------------------------------------------------------------


def test_clogp_miss_then_hits_within_block():
    """One round trip fetches the block; the other 3 items are hits."""
    machine, array = build("clogp")
    base = addr_homed_at(machine, array, 2)
    [p0] = run_programs(machine, {0: [ops.ReadRange(base, 4, 8)]})[:1]
    assert p0.buckets.latency_ns == 2 * us(1.6)  # one round trip
    assert machine.message_count() == 2


def test_clogp_local_miss_avoids_network():
    machine, array = build("clogp")
    local = addr_homed_at(machine, array, 0)
    [p0] = run_programs(machine, {0: [ops.Read(local)]})[:1]
    assert p0.buckets.latency_ns == 0
    assert machine.message_count() == 0
    assert p0.buckets.memory_ns == (
        machine.config.cache_hit_ns + machine.config.memory_ns
    )


def test_clogp_upgrade_write_is_free_of_network():
    """Coherence overhead (invalidations) is not modeled on CLogP."""
    machine, array = build("clogp")
    addr = addr_homed_at(machine, array, 2)
    block = addr // machine.config.block_bytes
    # Pre-establish two VALID copies directly in the coherence state.
    machine.memory.plan_read(0, block)
    machine.memory.plan_read(1, block)
    before = machine.message_count()
    [p0] = run_programs(machine, {0: [ops.Write(addr)]})[:1]
    # The ownership upgrade (and the invalidation of 1's copy) sent
    # *nothing* over the network...
    assert machine.message_count() == before
    assert p0.buckets.latency_ns == 0
    # ... and the sharer's copy is still invalidated (state changes!).
    from repro.memory import LineState

    assert machine.memory.caches[1].state_of(block) is LineState.INVALID
    assert machine.memory.caches[0].state_of(block) is LineState.DIRTY


def test_clogp_reread_after_invalidation_uses_network():
    """The paper's example: the re-read misses on both machines."""
    machine, array = build("clogp")
    addr = addr_homed_at(machine, array, 0)
    run_programs(
        machine,
        {
            0: [ops.Read(addr), ops.Barrier(0), ops.Barrier(1),
                ops.Read(addr)],
            1: [ops.Barrier(0), ops.Write(addr), ops.Barrier(1)],
            2: [ops.Barrier(0), ops.Barrier(1)],
            3: [ops.Barrier(0), ops.Barrier(1)],
        },
    )
    # Processor 0's second read must fetch from the dirty owner (1).
    block = addr // machine.config.block_bytes
    from repro.memory import LineState

    assert machine.memory.caches[0].state_of(block) is LineState.VALID
    assert machine.memory.caches[1].state_of(block) is LineState.SHARED_DIRTY


def test_clogp_eviction_writeback_is_free():
    machine, array = build(
        "clogp", cache_size_bytes=64, cache_assoc=1,
    )  # 2-set, 1-way: tiny cache
    a = addr_homed_at(machine, array, 2, 0)
    b = addr_homed_at(machine, array, 2, 1)
    # Same set?  blocks differ by nprocs=4 -> both even sets; with 2
    # sets both map to set 0: b evicts a.
    [p0] = run_programs(
        machine, {0: [ops.Write(a), ops.Write(b)]}
    )[:1]
    # Two ownership fetches (2 round trips); the dirty eviction of `a`
    # costs nothing on CLogP.
    assert machine.message_count() == 4


# -- target machine --------------------------------------------------------------------


def test_target_local_miss_costs_memory_only():
    machine, array = build("target")
    local = addr_homed_at(machine, array, 0)
    [p0] = run_programs(machine, {0: [ops.Read(local)]})[:1]
    assert machine.message_count() == 0
    assert p0.buckets.memory_ns >= machine.config.memory_ns


def test_target_remote_read_miss_messages():
    machine, array = build("target")
    remote = addr_homed_at(machine, array, 2)
    [p0] = run_programs(machine, {0: [ops.Read(remote)]})[:1]
    # Request (8 B) + data reply (32 B).
    assert machine.message_count() == 2
    assert p0.buckets.latency_ns == us(0.4) + us(1.6)


def test_target_hit_after_fill_is_free_of_network():
    machine, array = build("target")
    remote = addr_homed_at(machine, array, 2)
    [p0] = run_programs(machine, {0: [ops.Read(remote)] * 10})[:1]
    assert machine.message_count() == 2  # only the first read
    cache = machine.memory.caches[0]
    assert cache.hits == 9


def test_target_three_hop_read_from_dirty_owner():
    machine, array = build("target")
    addr = addr_homed_at(machine, array, 2)
    run_programs(
        machine,
        {
            1: [ops.Write(addr), ops.Barrier(0)],
            0: [ops.Barrier(0), ops.Read(addr)],
            2: [ops.Barrier(0)],
            3: [ops.Barrier(0)],
        },
    )
    # Count message kinds: expect a forward from home 2 to owner 1.
    # (Fabric does not keep kinds; infer from counters instead.)
    # Write: req(1->2) + data(2->1).  Read: req(0->2), fwd(2->1),
    # data(1->0).  Plus barrier traffic; so just assert the fabric saw
    # more than the write+read minimum and the caches ended correctly.
    from repro.memory import LineState

    block = addr // machine.config.block_bytes
    assert machine.memory.caches[1].state_of(block) is LineState.SHARED_DIRTY
    assert machine.memory.caches[0].state_of(block) is LineState.VALID


def test_target_upgrade_write_sends_control_messages():
    """Unlike CLogP, the target pays for ownership upgrades."""
    machine, array = build("target")
    addr = addr_homed_at(machine, array, 2)
    [p0] = run_programs(
        machine, {0: [ops.Read(addr), ops.Write(addr)]}
    )[:1]
    # read: req + data; upgrade write: req + grant.
    assert machine.message_count() == 4


def test_target_write_invalidation_traffic():
    machine, array = build("target")
    addr = addr_homed_at(machine, array, 0)
    run_programs(
        machine,
        {
            0: [ops.Read(addr), ops.Barrier(0), ops.Barrier(1)],
            1: [ops.Read(addr), ops.Barrier(0), ops.Barrier(1)],
            2: [ops.Barrier(0), ops.Write(addr), ops.Barrier(1)],
            3: [ops.Barrier(0), ops.Barrier(1)],
        },
    )
    # After the write, both readers are invalid; directory says 2 owns.
    from repro.memory import LineState

    block = addr // machine.config.block_bytes
    assert machine.memory.caches[0].state_of(block) is LineState.INVALID
    assert machine.memory.caches[1].state_of(block) is LineState.INVALID
    assert machine.memory.caches[2].state_of(block) is LineState.DIRTY
    entry = machine.memory.directory.entry(block)
    assert entry.owner == 2


def test_target_dirty_eviction_posts_writeback():
    machine, array = build("target", cache_size_bytes=64, cache_assoc=1)
    a = addr_homed_at(machine, array, 2, 0)
    b = addr_homed_at(machine, array, 2, 1)
    run_programs(machine, {0: [ops.Write(a), ops.Write(b)]})
    # write a: req+data; write b: req+data; eviction of dirty a: wb.
    assert machine.message_count() == 5


def test_buckets_account_for_elapsed_time():
    """Per-processor bucket sums approximate the finish time."""
    for name in ("target", "clogp", "logp", "ideal"):
        machine, array = build(name)
        remote = addr_homed_at(machine, array, 2)
        program = [ops.Compute(50), ops.Read(remote), ops.Write(remote)]
        [p0] = run_programs(machine, {0: program})[:1]
        assert p0.buckets.total_ns == p0.finish_ns


def test_determinism_of_full_machine_runs():
    def run_once():
        machine, array = build("target")
        remote = addr_homed_at(machine, array, 2)
        programs = {
            pid: [ops.Read(remote), ops.Write(remote), ops.Barrier(0)]
            for pid in range(4)
        }
        processors = run_programs(machine, programs)
        return [p.finish_ns for p in processors]

    assert run_once() == run_once()
