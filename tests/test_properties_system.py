"""Whole-system property tests: random programs on random machines.

These drive the full stack (processor interpreter, machine models,
coherence, network, synchronization) with hypothesis-generated
programs and check the invariants every simulation must satisfy:

* the run terminates (no deadlock) and is deterministic,
* each processor's overhead buckets sum exactly to its finish time,
* coherence state is consistent afterwards,
* CLogP's network traffic never exceeds the target's,
* traces of the run replay exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SystemConfig
from repro.core import ops
from repro.core.machine import Processor, make_machine

NPROCS = 4

#: Element addresses live in one shared array allocated per test.
N_ELEMS = 64
ELEM_BYTES = 8

# One program step, as generatable data.
step = st.one_of(
    st.tuples(st.just("compute"), st.integers(1, 500)),
    st.tuples(st.just("read"), st.integers(0, N_ELEMS - 1)),
    st.tuples(st.just("write"), st.integers(0, N_ELEMS - 1)),
    st.tuples(st.just("readrange"), st.integers(0, N_ELEMS - 9),
              st.integers(1, 8)),
    st.tuples(st.just("critical"), st.integers(0, 2),
              st.integers(0, N_ELEMS - 1)),
    st.tuples(st.just("barrier"),),
)

programs_strategy = st.lists(
    st.lists(step, min_size=0, max_size=12),
    min_size=NPROCS,
    max_size=NPROCS,
)

machines_strategy = st.sampled_from(["target", "clogp", "logp", "ideal"])
topologies_strategy = st.sampled_from(["full", "cube", "mesh"])


def _balance_barriers(programs):
    """Every processor must join a barrier the same number of times."""
    most = max(
        sum(1 for item in program if item[0] == "barrier")
        for program in programs
    )
    balanced = []
    for program in programs:
        count = sum(1 for item in program if item[0] == "barrier")
        balanced.append(list(program) + [("barrier",)] * (most - count))
    return balanced


def _build_and_run(machine_name, topology, programs, **config_overrides):
    config = SystemConfig(processors=NPROCS, topology=topology,
                          **config_overrides)
    machine = make_machine(machine_name, config)
    array = machine.space.alloc("data", N_ELEMS, ELEM_BYTES, "interleaved")

    def program_ops(pid, program):
        for item in program:
            kind = item[0]
            if kind == "compute":
                yield ops.Compute(item[1])
            elif kind == "read":
                yield ops.Read(array.addr(item[1]))
            elif kind == "write":
                yield ops.Write(array.addr(item[1]))
            elif kind == "readrange":
                yield ops.ReadRange(array.addr(item[1]), item[2], ELEM_BYTES)
            elif kind == "critical":
                _tag, lock_id, index = item
                yield ops.Lock(lock_id)
                yield ops.Read(array.addr(index))
                yield ops.Write(array.addr(index))
                yield ops.Unlock(lock_id)
            elif kind == "barrier":
                yield ops.Barrier(0)

    processors = [Processor(machine, pid) for pid in range(NPROCS)]
    machine.processors = processors
    for pid, program in enumerate(programs):
        machine.sim.spawn(processors[pid].run(program_ops(pid, program)))
    machine.sim.run()
    return machine, processors


@settings(max_examples=40, deadline=None)
@given(machine_name=machines_strategy, topology=topologies_strategy,
       programs=programs_strategy)
def test_buckets_sum_to_finish_time(machine_name, topology, programs):
    programs = _balance_barriers(programs)
    _machine, processors = _build_and_run(machine_name, topology, programs)
    for processor in processors:
        assert processor.buckets.total_ns == processor.finish_ns


@settings(max_examples=25, deadline=None)
@given(machine_name=machines_strategy, programs=programs_strategy)
def test_runs_are_reproducible(machine_name, programs):
    programs = _balance_barriers(programs)

    def fingerprint():
        machine, processors = _build_and_run(machine_name, "cube", programs)
        return (
            machine.sim.now,
            tuple(p.finish_ns for p in processors),
            machine.message_count(),
        )

    assert fingerprint() == fingerprint()


@settings(max_examples=25, deadline=None)
@given(topology=topologies_strategy, programs=programs_strategy,
       protocol=st.sampled_from(["berkeley", "illinois"]))
def test_coherence_invariants_after_random_programs(topology, programs,
                                                    protocol):
    programs = _balance_barriers(programs)
    machine, _processors = _build_and_run(
        "target", topology, programs, protocol=protocol
    )
    machine.memory.check_invariants()


def _lockstep(programs):
    """Pad programs to equal length and barrier after every step.

    Message-count comparisons between machines are only meaningful for
    the *same* reference interleaving; racy programs legitimately order
    differently on different machines.  Lockstepping fixes the order.
    """
    longest = max(len(program) for program in programs)
    out = []
    for program in programs:
        # Strip generated barriers (the lockstep adds its own) so every
        # program joins exactly one barrier per step.
        cleaned = [
            item if item[0] != "barrier" else ("compute", 1)
            for item in program
        ]
        padded = cleaned + [("compute", 1)] * (longest - len(cleaned))
        stepped = []
        for item in padded:
            stepped.append(item)
            stepped.append(("barrier",))
        out.append(stepped)
    return out


@settings(max_examples=20, deadline=None)
@given(programs=programs_strategy)
def test_clogp_traffic_never_exceeds_target(programs):
    programs = _lockstep(programs)
    target, _ = _build_and_run("target", "full", programs)
    clogp, _ = _build_and_run("clogp", "full", programs)
    assert clogp.message_count() <= target.message_count()


@settings(max_examples=20, deadline=None)
@given(programs=programs_strategy,
       barrier=st.sampled_from(["central", "tree"]))
def test_barrier_kinds_both_terminate(programs, barrier):
    programs = _balance_barriers(programs)
    _machine, processors = _build_and_run(
        "target", "mesh", programs, barrier=barrier
    )
    assert all(p.finish_ns >= 0 for p in processors)


@settings(max_examples=20, deadline=None)
@given(programs=programs_strategy)
def test_ideal_is_a_lower_bound(programs):
    programs = _balance_barriers(programs)
    _m_ideal, ideal = _build_and_run("ideal", "full", programs)
    _m_target, target = _build_and_run("target", "full", programs)
    assert max(p.finish_ns for p in target) >= max(
        p.finish_ns for p in ideal
    )
