"""The combining-tree barrier (extension to the sync substrate)."""

import pytest

from repro import ConfigError, SystemConfig, simulate, simulate_full
from repro.apps import make_app
from repro.core import ops
from repro.core.machine import Processor, make_machine
from repro.network import collect_stats

from tests.conftest import ALL_APPS, ALL_MACHINES, tiny_app, tiny_config


def test_barrier_kind_validated():
    SystemConfig(barrier="tree")
    with pytest.raises(ConfigError):
        SystemConfig(barrier="butterfly")


def run_programs(machine, programs):
    processors = [Processor(machine, pid) for pid in range(machine.nprocs)]
    machine.processors = processors
    for pid, program in programs.items():
        machine.sim.spawn(processors[pid].run(iter(program)))
    machine.sim.run()
    return processors


@pytest.mark.parametrize("machine_name", ALL_MACHINES)
@pytest.mark.parametrize("nprocs", [1, 2, 8])
def test_tree_barrier_synchronizes(machine_name, nprocs):
    config = SystemConfig(processors=nprocs, topology="cube",
                          barrier="tree")
    machine = make_machine(machine_name, config)
    after = {}

    def program(pid):
        yield ops.Compute(pid * 1_000)
        yield ops.Barrier(0)
        after[pid] = machine.sim.now

    run_programs(machine, {pid: program(pid) for pid in range(nprocs)})
    assert min(after.values()) >= (nprocs - 1) * 1_000 * 30


@pytest.mark.parametrize("machine_name", ["target", "clogp", "ideal"])
def test_tree_barrier_is_reusable(machine_name):
    config = SystemConfig(processors=4, barrier="tree")
    machine = make_machine(machine_name, config)
    order = []

    def program(pid):
        for phase in range(4):
            yield ops.Compute((pid + 1) * 131)
            yield ops.Barrier(0)
            order.append((phase, pid))

    run_programs(machine, {pid: program(pid) for pid in range(4)})
    phases = [phase for phase, _ in order]
    assert phases == sorted(phases)
    assert len(order) == 16


@pytest.mark.parametrize("app_name", ALL_APPS)
def test_apps_verify_with_tree_barrier(app_name):
    config = tiny_config(8, "mesh", barrier="tree")
    result = simulate(tiny_app(app_name, 8), "target", config,
                      check_invariants=True)
    assert result.verified


def test_tree_barrier_cuts_sync_traffic():
    """The centralized counter is a hot spot; the tree is not."""
    def messages(barrier):
        config = SystemConfig(processors=16, topology="mesh",
                              barrier=barrier)
        app = make_app("jacobi", 16, n=1_024, sweeps=2)
        return simulate(app, "target", config).messages

    assert messages("tree") < 0.5 * messages("central")


def test_tree_barrier_improves_locality():
    def locality(barrier):
        config = SystemConfig(processors=16, topology="mesh",
                              barrier=barrier)
        app = make_app("jacobi", 16, n=1_024, sweeps=2)
        _result, machine = simulate_full(app, "target", config)
        return collect_stats(machine.fabric).locality_factor

    assert locality("tree") < locality("central")


def test_tree_barrier_scales_better():
    """O(log p) combining beats O(p) serialized counter updates."""
    def barrier_time(barrier):
        config = SystemConfig(processors=32, topology="full",
                              barrier=barrier)
        machine = make_machine("target", config)

        def program(pid):
            yield ops.Barrier(0)

        processors = run_programs(
            machine, {pid: program(pid) for pid in range(32)}
        )
        return max(p.finish_ns for p in processors)

    assert barrier_time("tree") < barrier_time("central")
