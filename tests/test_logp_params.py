"""LogP parameter derivation -- the paper's Section 5 values."""

import pytest

from repro import SystemConfig, derive_logp
from repro.units import us


def params_for(topology, nprocs):
    return derive_logp(SystemConfig(processors=nprocs, topology=topology))


def test_L_is_topology_independent():
    for topology in ("full", "cube", "mesh"):
        for nprocs in (2, 8, 32):
            assert params_for(topology, nprocs).L_ns == us(1.6)


@pytest.mark.parametrize("nprocs", [2, 4, 8, 16, 32])
def test_full_g_is_3_2_over_p_us(nprocs):
    # Paper: g = 3.2/p us on the fully connected network.
    assert params_for("full", nprocs).g_ns == round(us(3.2) / nprocs)


@pytest.mark.parametrize("nprocs", [2, 4, 8, 16, 32])
def test_cube_g_is_1_6_us(nprocs):
    # Paper: g = 1.6 us on the hypercube, independent of p.
    assert params_for("cube", nprocs).g_ns == us(1.6)


@pytest.mark.parametrize(
    "nprocs,cols", [(2, 2), (4, 2), (8, 4), (16, 4), (32, 8), (64, 8)]
)
def test_mesh_g_is_0_8_times_columns_us(nprocs, cols):
    # Paper: g = 0.8 * px us on the mesh (px = number of columns).
    assert params_for("mesh", nprocs).g_ns == us(0.8) * cols


def test_single_processor_has_no_gap():
    for topology in ("full", "cube", "mesh"):
        assert params_for(topology, 1).g_ns == 0


def test_o_is_zero_on_shared_memory():
    assert params_for("full", 8).o_ns == 0


def test_round_trip_is_2L():
    params = params_for("cube", 8)
    assert params.round_trip_ns == 2 * params.L_ns == us(3.2)


def test_g_ordering_full_le_cube_le_mesh():
    """Lower connectivity -> larger g (more pessimistic contention)."""
    for nprocs in (4, 16, 64):
        g_full = params_for("full", nprocs).g_ns
        g_cube = params_for("cube", nprocs).g_ns
        g_mesh = params_for("mesh", nprocs).g_ns
        assert g_full <= g_cube <= g_mesh


def test_derive_accepts_prebuilt_topology():
    from repro.network import make_topology

    config = SystemConfig(processors=16, topology="mesh")
    topology = make_topology("mesh", 16)
    assert derive_logp(config, topology) == derive_logp(config)
