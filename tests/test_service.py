"""The simulation service: coalescing, shedding, breaker, drain.

Two layers of coverage:

* **event-loop tests** drive :class:`ReproService.serve_spec` directly
  against a deterministic stub backend whose completion the test gates,
  so coalescing, shedding, and failure propagation are asserted without
  racing a real pool;
* **socket tests** run the full daemon (real HTTP framing, real
  supervised process pool) via the in-thread harness and re-assert the
  headline contracts end-to-end: 32 concurrent identical cold requests
  cost exactly one simulation and every body is byte-identical to a
  serial reference, warm requests replay the same bytes, and a drain
  exits 0.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import RunSpec
from repro.core.runner import simulate_spec
from repro.exec.backend import PointFailure, failure_from
from repro.exec.store import ResultStore
from repro.errors import ReproError, WorkerCrashError
from repro.runspec import canonical_json
from repro.service import BreakerState, CircuitBreaker, ServiceConfig
from repro.service.app import ReproService, result_payload
from repro.service.testing import serve_in_thread


def quick_spec(nprocs: int = 1, app: str = "fft", machine: str = "ideal"):
    return RunSpec.build(app, machine, nprocs, preset="quick")


def reference_body(spec: RunSpec) -> bytes:
    """The canonical servable bytes of one serially simulated spec."""
    result = simulate_spec(spec)
    payload = result_payload(spec.spec_digest(), result)
    return canonical_json(payload).encode("utf-8")


# -- deterministic stub backend ------------------------------------------------------


class StubBackend:
    """A backend whose outcomes and timing the test controls.

    ``gate`` (when given) blocks every batch until the test releases
    it, so requests can be piled up behind an in-flight point.
    ``outcome_fn`` maps a spec to its outcome; the default simulates
    in-process (quick specs are milliseconds).
    """

    def __init__(self, outcome_fn=None, gate=None, on_batch=None):
        self.jobs = 2
        self.gate = gate
        self.outcome_fn = outcome_fn or simulate_spec
        self.on_batch = on_batch
        self.batches = []
        self.listeners = []
        self.aborted = False
        self.closed = False

    def add_rebuild_listener(self, listener):
        self.listeners.append(listener)

    def fire_rebuild(self):
        for listener in self.listeners:
            listener()

    def run(self, specs, retries=1):
        self.batches.append(list(specs))
        if self.on_batch is not None:
            self.on_batch(self, specs)
        if self.gate is not None:
            self.gate.wait()
        for spec in specs:
            yield spec, self.outcome_fn(spec)

    def abort(self):
        self.aborted = True
        if self.gate is not None:
            self.gate.set()

    def close(self):
        self.closed = True

    def stats(self):
        return {"stub": True}


def run_service(test_coro, config=None, backend=None, store=None):
    """Run one async test body against a started stub-backed service."""
    config = config or ServiceConfig(request_timeout_s=30.0)
    service = ReproService(
        config, backend=backend or StubBackend(), store=store
    )

    async def _main():
        await service.start()
        try:
            return await test_coro(service)
        finally:
            if not service.draining:
                await service.drain()

    return asyncio.run(_main())


def body_of(response) -> dict:
    return json.loads(response.body.decode("utf-8"))


# -- coalescing ----------------------------------------------------------------------


def test_concurrent_identical_specs_coalesce_to_one_simulation():
    gate = threading.Event()
    backend = StubBackend(gate=gate)
    spec = quick_spec()
    reference = reference_body(spec)

    async def scenario(service):
        waiters = [
            asyncio.ensure_future(service.serve_spec(spec, 30.0))
            for _ in range(32)
        ]
        # Let every request reach the single-flight table before the
        # backend is allowed to produce the one result.
        while service.stats.coalesce_hits < 31:
            await asyncio.sleep(0.005)
        assert len(service.entries) == 1
        gate.set()
        return await asyncio.gather(*waiters)

    responses = run_service(scenario, backend=backend)
    assert [r.status for r in responses] == [200] * 32
    bodies = {r.body for r in responses}
    assert bodies == {reference}
    assert len(backend.batches) == 1 and len(backend.batches[0]) == 1


def test_coalesced_leader_failure_reaches_every_follower():
    gate = threading.Event()

    def fail(spec):
        return failure_from(
            spec, WorkerCrashError("the leader's point", resubmits=2),
            attempts=2,
        )

    backend = StubBackend(outcome_fn=fail, gate=gate)
    spec = quick_spec()

    async def scenario(service):
        waiters = [
            asyncio.ensure_future(service.serve_spec(spec, 30.0))
            for _ in range(5)
        ]
        while service.stats.coalesce_hits < 4:
            await asyncio.sleep(0.005)
        gate.set()
        return await asyncio.gather(*waiters)

    responses = run_service(scenario, backend=backend)
    # ReproError is transient -> 503, and every follower gets the same
    # structured body as the leader (no hangs, no generic 500s).
    assert {r.status for r in responses} == {503}
    assert len({r.body for r in responses}) == 1
    error = body_of(responses[0])["error"]
    assert error["error"] == "WorkerCrashError"
    assert error["attempts"] == 2
    assert error["transient"] is True


def test_permanent_point_failure_maps_to_422():
    def fail(spec):
        failure = failure_from(spec, ReproError("x"), attempts=1)
        return PointFailure(**dict(failure.to_dict(), error="ConfigError"))

    async def scenario(service):
        return await service.serve_spec(quick_spec(), 30.0)

    response = run_service(scenario, backend=StubBackend(outcome_fn=fail))
    assert response.status == 422
    assert body_of(response)["error"]["transient"] is False


def test_identical_specs_arriving_during_pool_rebuild_still_coalesce():
    gate = threading.Event()
    backend = StubBackend(gate=gate)
    backend.on_batch = lambda b, specs: b.fire_rebuild()
    spec = quick_spec()

    async def scenario(service):
        first = asyncio.ensure_future(service.serve_spec(spec, 30.0))
        # The batch has started and fired a rebuild notification; a
        # second identical spec must join the existing entry, not
        # resubmit against the rebuilding pool.
        while not backend.batches:
            await asyncio.sleep(0.005)
        second = asyncio.ensure_future(service.serve_spec(spec, 30.0))
        while service.stats.coalesce_hits < 1:
            await asyncio.sleep(0.005)
        gate.set()
        return await asyncio.gather(first, second)

    responses = run_service(scenario, backend=backend)
    assert [r.status for r in responses] == [200, 200]
    assert responses[0].body == responses[1].body
    assert len(backend.batches) == 1
    # One rebuild is below the trip threshold; a completed point then
    # resets the consecutive count.


# -- warm paths ----------------------------------------------------------------------


def test_store_hit_is_served_without_touching_the_backend(tmp_path):
    spec = quick_spec()
    store = ResultStore(tmp_path)
    store.put(spec, simulate_spec(spec))

    def explode(_spec):  # pragma: no cover - the assertion is it never runs
        raise AssertionError("backend touched on a warm request")

    backend = StubBackend(outcome_fn=explode)

    async def scenario(service):
        first = await service.serve_spec(spec, 30.0)
        second = await service.serve_spec(spec, 30.0)
        return first, second

    first, second = run_service(
        scenario, backend=backend, store=store,
        config=ServiceConfig(cache_dir=str(tmp_path)),
    )
    assert first.status == second.status == 200
    assert first.body == second.body == reference_body(spec)
    assert first.headers["x-repro-source"] == "store"
    assert second.headers["x-repro-source"] == "memo"
    assert backend.batches == []


def test_cold_result_is_persisted_for_the_next_daemon(tmp_path):
    spec = quick_spec()
    store = ResultStore(tmp_path)

    async def scenario(service):
        return await service.serve_spec(spec, 30.0)

    response = run_service(
        scenario, store=store,
        config=ServiceConfig(cache_dir=str(tmp_path)),
    )
    assert response.status == 200
    # Drain flushed the write-behind put: a fresh store sees the entry.
    assert ResultStore(tmp_path).get(spec) is not None


# -- admission control ---------------------------------------------------------------


def test_full_queue_sheds_with_429_and_retry_after():
    gate = threading.Event()
    backend = StubBackend(gate=gate)
    config = ServiceConfig(max_queue=2, request_timeout_s=30.0)

    async def scenario(service):
        first = asyncio.ensure_future(
            service.serve_spec(quick_spec(1), 30.0)
        )
        second = asyncio.ensure_future(
            service.serve_spec(quick_spec(2), 30.0)
        )
        while service.stats.cold_leaders < 2:
            await asyncio.sleep(0.005)
        shed = await service.serve_spec(quick_spec(4), 30.0)
        gate.set()
        served = await asyncio.gather(first, second)
        return shed, served

    shed, served = run_service(scenario, config=config, backend=backend)
    assert shed.status == 429
    assert int(shed.headers["retry-after"]) >= 1
    assert body_of(shed)["error"]["error"] == "Shed"
    assert [r.status for r in served] == [200, 200]


def test_draining_service_sheds_cold_but_serves_warm():
    spec = quick_spec()

    async def scenario(service):
        warm_before = await service.serve_spec(spec, 30.0)
        service.draining = True  # admission check only; no real drain
        warm = await service.serve_spec(spec, 30.0)
        cold = await service.serve_spec(quick_spec(2), 30.0)
        service.draining = False
        return warm_before, warm, cold

    warm_before, warm, cold = run_service(scenario)
    assert warm_before.status == 200
    assert warm.status == 200 and warm.body == warm_before.body
    assert cold.status == 503
    assert "draining" in body_of(cold)["error"]["message"]


def test_request_deadline_expires_without_killing_the_shared_flight():
    gate = threading.Event()
    backend = StubBackend(gate=gate)
    spec = quick_spec()

    async def scenario(service):
        slow = asyncio.ensure_future(service.serve_spec(spec, 30.0))
        while not service.entries:
            await asyncio.sleep(0.005)
        # A second waiter with a tiny deadline times out...
        timed_out = await service.serve_spec(spec, 0.05)
        # ...but the shared future must survive its timeout.
        gate.set()
        settled = await slow
        return timed_out, settled

    timed_out, settled = run_service(scenario, backend=backend)
    assert timed_out.status == 504
    error = body_of(timed_out)["error"]
    assert error["error"] == "DeadlineExpiredError"
    assert error["transient"] is True
    assert settled.status == 200
    assert settled.body == reference_body(spec)


# -- circuit breaker -----------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_breaker_trips_after_consecutive_rebuilds_and_recovers():
    clock = FakeClock()
    breaker = CircuitBreaker(max_rebuilds=3, cooldown_s=5.0, clock=clock)
    for _ in range(2):
        breaker.record_rebuild()
    assert breaker.state is BreakerState.CLOSED
    breaker.record_success()  # a completed point resets the count
    for _ in range(3):
        breaker.record_rebuild()
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 1

    allowed, probe, retry_after = breaker.allow_cold()
    assert not allowed and retry_after == pytest.approx(5.0)

    clock.now += 5.1
    allowed, probe, _ = breaker.allow_cold()
    assert allowed and probe  # half-open: the probe is admitted
    allowed, _, _ = breaker.allow_cold()
    assert not allowed  # exactly one probe at a time
    breaker.record_success(probe=True)
    assert breaker.state is BreakerState.CLOSED
    allowed, probe, _ = breaker.allow_cold()
    assert allowed and not probe


def test_breaker_probe_failure_reopens_for_another_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(max_rebuilds=1, cooldown_s=5.0, clock=clock)
    breaker.record_rebuild()
    assert breaker.state is BreakerState.OPEN
    clock.now += 5.1
    allowed, probe, _ = breaker.allow_cold()
    assert allowed and probe
    breaker.record_failure(probe=True)
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 2
    assert not breaker.allow_cold()[0]


def test_breaker_rebuild_during_half_open_probe_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(max_rebuilds=1, cooldown_s=5.0, clock=clock)
    breaker.record_rebuild()
    clock.now += 5.1
    assert breaker.allow_cold() == (True, True, 0.0)
    breaker.record_rebuild()  # the pool broke again mid-probe
    assert breaker.state is BreakerState.OPEN


def test_open_breaker_sheds_cold_work_but_warm_flows():
    clock = FakeClock()
    spec = quick_spec()

    async def scenario(service):
        service.breaker = CircuitBreaker(
            max_rebuilds=3, cooldown_s=5.0, clock=clock
        )
        warm_seed = await service.serve_spec(spec, 30.0)
        for _ in range(3):
            service.breaker.record_rebuild()
        cold = await service.serve_spec(quick_spec(2), 30.0)
        warm = await service.serve_spec(spec, 30.0)
        # After the cooldown one probe goes through and closes the
        # breaker on success.
        clock.now += 5.1
        probe = await service.serve_spec(quick_spec(2), 30.0)
        return warm_seed, cold, warm, probe, service

    warm_seed, cold, warm, probe, service = run_service(scenario)
    assert warm_seed.status == 200
    assert cold.status == 503
    assert "breaker" in body_of(cold)["error"]["message"]
    assert warm.status == 200 and warm.body == warm_seed.body
    assert probe.status == 200
    assert service.breaker.state is BreakerState.CLOSED
    assert service.stats.shed_breaker == 1


# -- parsing and HTTP-level behaviour ------------------------------------------------


def test_parse_spec_accepts_canonical_and_build_forms():
    spec = quick_spec()
    parsed = ReproService.parse_spec({"spec": spec.to_dict()})
    assert parsed.spec_digest() == spec.spec_digest()
    built = ReproService.parse_spec({
        "build": {"app": "fft", "machine": "ideal", "nprocs": 1,
                  "preset": "quick"},
    })
    assert built.spec_digest() == spec.spec_digest()


@pytest.mark.parametrize("payload", [
    [],
    {},
    {"build": {"app": "fft", "machine": "ideal", "nprocs": 1,
               "bogus": True}},
    {"build": {"app": "no-such-app", "machine": "ideal", "nprocs": 1}},
    {"spec": {"app": "fft"}},
])
def test_parse_spec_rejects_malformed_payloads(payload):
    from repro.service.http import BadRequest

    with pytest.raises(BadRequest):
        ReproService.parse_spec(payload)


# -- end-to-end over real sockets ----------------------------------------------------


@pytest.fixture
def daemon(tmp_path):
    handle = serve_in_thread(ServiceConfig(
        port=0, jobs=2, cache_dir=str(tmp_path / "store"),
        request_timeout_s=120.0,
    ))
    try:
        yield handle
    finally:
        if handle.exit_code is None:
            handle.shutdown()


BUILD = {"app": "fft", "machine": "target", "nprocs": 4, "preset": "quick"}


def test_daemon_cold_then_warm_bytes_and_clean_drain(daemon):
    spec = RunSpec.build(**BUILD)
    reference = reference_body(spec)

    status, cold, headers = daemon.request("POST", "/run", {"build": BUILD})
    assert status == 200
    assert headers["x-repro-source"] == "simulated"
    assert cold == reference

    status, warm, headers = daemon.request("POST", "/run", {"build": BUILD})
    assert status == 200
    assert headers["x-repro-source"] == "memo"
    assert warm == reference

    status, stats = daemon.get("/stats")
    assert status == 200
    assert stats["simulated"] == 1
    assert stats["warm_hits"] == 1
    assert stats["by_status"]["200"] >= 2

    assert daemon.shutdown() == 0


def test_daemon_coalesces_32_concurrent_identical_cold_requests(daemon):
    spec = RunSpec.build(**BUILD)
    reference = reference_body(spec)

    def one_request(_i):
        conn = http.client.HTTPConnection(
            daemon.daemon.config.host, daemon.port, timeout=120
        )
        try:
            status, body, _headers = daemon.request(
                "POST", "/run", {"build": BUILD}, conn=conn
            )
        finally:
            conn.close()
        return status, body

    with ThreadPoolExecutor(max_workers=32) as pool:
        outcomes = list(pool.map(one_request, range(32)))

    assert {status for status, _ in outcomes} == {200}
    assert {body for _, body in outcomes} == {reference}
    # The headline proof: 32 identical requests, exactly one simulation.
    assert daemon.service.stats.simulated == 1
    stats = daemon.service.stats
    assert stats.coalesce_hits + stats.warm_hits + stats.cold_leaders == 32


def test_daemon_batch_endpoint_deduplicates_against_single_flight(daemon):
    runs = [{"build": BUILD} for _ in range(8)]
    status, payload = daemon.post("/batch", {"runs": runs})
    assert status == 200
    results = payload["results"]
    assert len(results) == 8
    assert {r["status"] for r in results} == {200}
    bodies = {canonical_json(r["body"]) for r in results}
    assert len(bodies) == 1
    assert daemon.service.stats.simulated == 1


def test_daemon_health_endpoints(daemon):
    assert daemon.get("/healthz") == (200, {"status": "ok"})
    status, ready = daemon.get("/readyz")
    assert status == 200
    assert ready["ready"] is True
    assert ready["breaker"]["state"] == "closed"
    assert ready["store"]["configured"] is True
    assert ready["store"]["writable"] is True


def test_daemon_protocol_errors(daemon):
    status, _, _ = daemon.request("GET", "/no-such-route")
    assert status == 404
    status, _, _ = daemon.request("GET", "/run")
    assert status == 405
    status, body, _ = daemon.request("POST", "/run", {"nope": 1})
    assert status == 400
    assert json.loads(body)["error"]["error"] == "BadRequest"
    conn = daemon.connection()
    conn.request("POST", "/run", body=b"{not json",
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    assert response.status == 400
    response.read()
    # A body-level error leaves the (well-framed) connection usable.
    assert response.getheader("connection") == "keep-alive"
    assert daemon.get("/healthz")[0] == 200


def test_daemon_closes_connection_on_malformed_framing(daemon):
    import socket

    with socket.create_connection(
        (daemon.daemon.config.host, daemon.port), timeout=10
    ) as sock:
        sock.sendall(b"NOT A REQUEST LINE\r\n\r\n")
        data = sock.recv(65536)
        # A framing-level error gets a 400 and the connection is closed.
        assert data.startswith(b"HTTP/1.1 400 ")
        assert b"connection: close" in data.lower()
        sock.settimeout(5)
        assert sock.recv(1) == b""


def test_daemon_drain_resolves_inflight_and_exits_cleanly(tmp_path):
    gate = threading.Event()
    config = ServiceConfig(port=0, drain_s=0.5, request_timeout_s=30.0)
    service = ReproService(config, backend=StubBackend(gate=gate))
    handle = serve_in_thread(config, service=service)
    try:
        outcomes = []

        def slow_request():
            conn = http.client.HTTPConnection(
                config.host, handle.port, timeout=30
            )
            try:
                status, body, _ = handle.request(
                    "POST", "/run",
                    {"build": dict(BUILD, machine="ideal", nprocs=1)},
                    conn=conn,
                )
            finally:
                conn.close()
            outcomes.append((status, body))

        thread = threading.Thread(target=slow_request)
        thread.start()
        while not service.entries:
            time.sleep(0.01)
        # SIGTERM with a point still gated: the drain deadline expires,
        # the waiter gets a structured drain error, and the daemon
        # still exits 0 (clean drain, not a hang or a 130).
        exit_code = handle.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert exit_code == 0
        assert len(outcomes) == 1
        status, body = outcomes[0]
        assert status == 503
        assert b"drained" in body
    finally:
        gate.set()
        if handle.exit_code is None:
            handle.shutdown()
