"""ResultStore under concurrent writers, plus size-bounding gc.

The daemon turned the store from a single-sweep cache into a shared
mutable resource: write-behind tasks inside one process and multiple
server processes may all ``put()`` into the same directory.  The
contract under test: racing writers never interleave bytes (every
reader always sees a complete, checksum-valid entry), lost races are
silent, dead writers leave only temp debris that ``gc`` sweeps, and
``gc --max-bytes`` evicts least-recently-*used* entries first.
"""

from __future__ import annotations

import json
import multiprocessing
import os

from repro import RunSpec
from repro.cli import main
from repro.core.runner import simulate_spec
from repro.exec.store import ResultStore


def quick_spec(nprocs: int = 1):
    return RunSpec.build("fft", "ideal", nprocs, preset="quick")


def canonical(result) -> dict:
    data = result.to_dict()
    data.pop("wall_seconds")
    return data


# -- multi-process hammer ------------------------------------------------------------
# Worker functions live at module level so they pickle to child procs.


def _hammer(root, spec, result, rounds, barrier):
    store = ResultStore(root)
    barrier.wait()  # all writers release at once: maximal contention
    for _ in range(rounds):
        store.put(spec, result)


def test_racing_puts_same_digest_never_interleave(tmp_path):
    spec = quick_spec()
    result = simulate_spec(spec)
    procs = 4
    barrier = multiprocessing.Barrier(procs)
    workers = [
        multiprocessing.Process(
            target=_hammer, args=(str(tmp_path), spec, result, 25, barrier)
        )
        for _ in range(procs)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
        assert worker.exitcode == 0

    store = ResultStore(tmp_path)
    # 100 racing puts of one digest leave exactly one complete entry...
    assert len(store.entry_paths()) == 1
    # ...with zero temp debris (every put cleaned up after itself)...
    assert store.tmp_paths() == []
    # ...that parses, checks, and round-trips bit-identically.
    report = store.verify()
    assert report.healthy and report.ok == 1
    cached = store.get(spec)
    assert cached is not None
    assert canonical(cached) == canonical(result)


def test_racing_puts_distinct_digests_all_land(tmp_path):
    specs = [quick_spec(n) for n in (1, 2, 4)]
    results = [simulate_spec(spec) for spec in specs]
    barrier = multiprocessing.Barrier(len(specs))
    workers = [
        multiprocessing.Process(
            target=_hammer, args=(str(tmp_path), spec, result, 10, barrier)
        )
        for spec, result in zip(specs, results)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
        assert worker.exitcode == 0

    store = ResultStore(tmp_path)
    assert len(store.entry_paths()) == len(specs)
    assert store.verify().healthy
    for spec, result in zip(specs, results):
        assert canonical(store.get(spec)) == canonical(result)


# -- gc ------------------------------------------------------------------------------


def _aged_entries(tmp_path, count=3):
    """``count`` entries with strictly increasing mtimes; oldest first."""
    store = ResultStore(tmp_path)
    specs = [quick_spec(n) for n in (1, 2, 4)[:count]]
    for index, spec in enumerate(specs):
        store.put(spec, simulate_spec(spec))
        path = store._entry_path(spec.spec_digest())
        stamp = 1_000_000 + index * 1000
        os.utime(path, (stamp, stamp))
    return store, specs


def test_gc_evicts_oldest_entries_first(tmp_path):
    store, specs = _aged_entries(tmp_path)
    sizes = [
        store._entry_path(s.spec_digest()).stat().st_size for s in specs
    ]
    budget = sizes[1] + sizes[2]  # room for exactly the two newest
    report = store.gc(budget)
    assert report.evicted == 1
    assert report.evicted_bytes == sizes[0]
    assert report.kept == 2
    assert report.within_budget
    assert store.get(specs[0]) is None       # the oldest went
    assert store.get(specs[1]) is not None   # recency survived
    assert store.get(specs[2]) is not None


def test_gc_lru_is_recency_of_use_not_of_write(tmp_path):
    store, specs = _aged_entries(tmp_path, count=2)
    # A hit on the *older* entry refreshes its mtime...
    assert store.get(specs[0]) is not None
    size_new = store._entry_path(specs[1].spec_digest()).stat().st_size
    report = store.gc(size_new)
    # ...so eviction removes the entry that was written later but
    # used longer ago.
    assert report.evicted == 1
    assert store.get(specs[0]) is not None
    assert store.get(specs[1]) is None


def test_gc_sweeps_tmp_and_quarantine_debris_first(tmp_path):
    store, specs = _aged_entries(tmp_path)
    bucket = store._entry_path(specs[0].spec_digest()).parent
    tmp = bucket / ".deadbeef.12345.0.tmp"
    tmp.write_text("partial write of a dead process")
    entry = store._entry_path(specs[0].spec_digest())
    quarantined = entry.with_name(entry.name + ".quarantined")
    quarantined.write_text("{corrupt}")

    before = store.size_bytes()
    report = store.gc(before)  # generous budget: only debris goes
    assert report.tmp_removed == 1
    assert report.quarantine_removed == 1
    assert report.evicted == 0
    assert report.before_bytes == before
    assert not tmp.exists() and not quarantined.exists()
    assert len(store.entry_paths()) == len(specs)


def test_gc_report_summary_and_zero_budget(tmp_path):
    store, specs = _aged_entries(tmp_path)
    report = store.gc(0)
    assert report.evicted == len(specs)
    assert report.after_bytes == 0
    assert report.kept == 0
    assert report.within_budget
    summary = report.summary()
    assert "result store gc:" in summary
    assert f"evicted {len(specs)}" in summary
    assert store.entry_paths() == []


def test_gc_on_missing_directory_is_a_clean_no_op(tmp_path):
    report = ResultStore(tmp_path / "never-created").gc(1024)
    assert report.before_bytes == 0
    assert report.after_bytes == 0
    assert report.within_budget


# -- CLI surface ---------------------------------------------------------------------


def test_cache_gc_cli_enforces_the_budget(tmp_path, capsys):
    store, specs = _aged_entries(tmp_path)
    size_newest = store._entry_path(specs[-1].spec_digest()).stat().st_size
    code = main([
        "cache", "gc", "--cache-dir", str(tmp_path),
        "--max-bytes", str(size_newest),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "result store gc:" in out
    survivors = ResultStore(tmp_path).entry_paths()
    assert len(survivors) == 1
    assert survivors[0].stem == specs[-1].spec_digest()


def test_cache_gc_cli_accepts_size_suffixes(tmp_path, capsys):
    _aged_entries(tmp_path, count=2)
    code = main([
        "cache", "gc", "--cache-dir", str(tmp_path), "--max-bytes", "1M",
    ])
    assert code == 0
    assert len(ResultStore(tmp_path).entry_paths()) == 2


def test_stats_counters_track_the_gc_lifecycle(tmp_path):
    store, specs = _aged_entries(tmp_path, count=2)
    store.gc(0)
    fresh = ResultStore(tmp_path)
    assert fresh.get(specs[0]) is None
    assert fresh.stats()["misses"] == 1


def test_entry_written_by_gc_surviving_daemon_is_readable(tmp_path):
    # A put after gc lands in the same bucket layout.
    store, specs = _aged_entries(tmp_path)
    store.gc(0)
    store.put(specs[0], simulate_spec(specs[0]))
    entry = store._entry_path(specs[0].spec_digest())
    payload = json.loads(entry.read_text())
    assert payload["spec_digest"] == specs[0].spec_digest()
    assert ResultStore(tmp_path).get(specs[0]) is not None
