"""RunSpec: canonical serialization and the spec digest.

The digest replaces the retired hand-maintained ``RunKey`` tuple as the
identity of one simulation.  The tuple dropped fields it did not know
about -- ``barrier`` and ``seed`` among them -- so two genuinely
different runs could alias under one memo key.  The digest hashes the
*entire* canonical serialization, so every configuration knob
participates by construction.
"""

import pytest

from repro import FaultConfig, RunSpec, SystemConfig
from repro.errors import ConfigError
from repro.faults import LinkFailure, NodeStall


def spec(**overrides) -> RunSpec:
    kwargs = dict(app="fft", machine="clogp", nprocs=4, topology="full",
                  preset="quick")
    kwargs.update(overrides)
    return RunSpec.build(**kwargs)


# -- digest stability ---------------------------------------------------------------


def test_digest_is_stable_across_constructions():
    assert spec().spec_digest() == spec().spec_digest()


def test_digest_is_independent_of_params_dict_order():
    first = RunSpec.build("is", "target", 4, params={"keys": 512, "buckets": 64})
    second = RunSpec.build("is", "target", 4, params={"buckets": 64, "keys": 512})
    assert first == second
    assert first.spec_digest() == second.spec_digest()


def test_digest_survives_serialization_round_trip():
    original = spec(fault=FaultConfig(drop_rate=0.01, seed=7),
                    barrier="tree", check="strict")
    rebuilt = RunSpec.from_dict(original.to_dict())
    assert rebuilt == original
    assert rebuilt.spec_digest() == original.spec_digest()


# -- every knob participates (the RunKey aliasing hazard) ---------------------------


@pytest.mark.parametrize("overrides", [
    {"app": "cg"},
    {"machine": "target"},
    {"topology": "mesh"},
    {"nprocs": 8},
    {"preset": "default"},
    {"seed": 999},                      # RunKey dropped the seed
    {"barrier": "tree"},                # RunKey dropped the barrier
    {"protocol": "illinois"},
    {"adaptive_g": True},
    {"g_per_event_type": True},
    {"digest": True},
    {"max_events": 1_000_000},
    {"fault": FaultConfig(drop_rate=0.05)},
    {"fault": FaultConfig(seed=3)},
    {"params": {"points": 1024}},
])
def test_every_field_changes_the_digest(overrides):
    assert spec(**overrides).spec_digest() != spec().spec_digest()


def test_check_level_changes_the_digest():
    # Explicit levels on both sides: the omitted-check default tracks
    # the ambient REPRO_CHECK, so it cannot anchor this comparison.
    assert (spec(check="strict").spec_digest()
            != spec(check="off").spec_digest())


def test_fault_windows_change_the_digest():
    windowed = spec(fault=FaultConfig(
        link_failures=(LinkFailure(0, 1, 10, 20),),
        node_stalls=(NodeStall(2, 5, 9),),
    ))
    assert windowed.spec_digest() != spec().spec_digest()
    rebuilt = RunSpec.from_dict(windowed.to_dict())
    assert rebuilt.config.fault.link_failures == (LinkFailure(0, 1, 10, 20),)
    assert rebuilt.config.fault.node_stalls == (NodeStall(2, 5, 9),)
    assert rebuilt.spec_digest() == windowed.spec_digest()


def test_config_hardware_fields_change_the_digest():
    custom = RunSpec(
        app="fft", machine="target",
        config=SystemConfig(processors=4, memory_cycles=20),
        params={"points": 512}, preset="quick",
    )
    base = RunSpec(
        app="fft", machine="target",
        config=SystemConfig(processors=4),
        params={"points": 512}, preset="quick",
    )
    assert custom.spec_digest() != base.spec_digest()


# -- strict deserialization ---------------------------------------------------------


def test_from_dict_rejects_unknown_config_fields():
    payload = spec().to_dict()
    payload["config"]["flux_capacitor"] = True
    with pytest.raises(ConfigError, match="flux_capacitor"):
        RunSpec.from_dict(payload)


def test_from_dict_rejects_missing_config_fields():
    payload = spec().to_dict()
    del payload["config"]["barrier"]
    with pytest.raises(ConfigError, match="barrier"):
        RunSpec.from_dict(payload)


def test_from_dict_rejects_wrong_schema():
    payload = spec().to_dict()
    payload["schema"] = 99
    with pytest.raises(ConfigError, match="schema 99"):
        RunSpec.from_dict(payload)


def test_unknown_machine_rejected():
    with pytest.raises(ConfigError, match="unknown machine"):
        RunSpec(app="fft", machine="vax", config=SystemConfig(processors=4))


def test_non_scalar_params_rejected():
    with pytest.raises(ConfigError, match="JSON scalar"):
        RunSpec(app="fft", machine="clogp",
                config=SystemConfig(processors=4),
                params={"points": [1, 2, 3]})


# -- execution helpers --------------------------------------------------------------


def test_make_application_returns_fresh_instances():
    s = spec()
    first = s.make_application()
    second = s.make_application()
    assert first is not second
    assert first.name == "fft"
    assert first.nprocs == 4


def test_build_resolves_preset_params():
    from repro.experiments.workloads import app_params

    s = spec()
    assert s.params_dict == app_params("fft", "quick")


def test_describe_names_the_point():
    assert spec().describe() == "fft/clogp/full/p=4 (quick)"
