"""History-based (adaptive) g estimation -- the paper's Section 7 idea."""

from repro import SystemConfig, simulate
from repro.core.logp_net import LogPNetwork
from repro.core.params import LogPParams
from repro.engine import Simulator
from repro.network import make_topology

from tests.conftest import tiny_app, tiny_config


def make_net(topology_name="mesh", nprocs=16, g=3_200, adaptive=True):
    sim = Simulator()
    topology = make_topology(topology_name, nprocs)
    params = LogPParams(L_ns=1_600, g_ns=g, o_ns=0, P=nprocs)
    return sim, LogPNetwork(sim, params, topology=topology, adaptive=adaptive)


def test_first_message_uses_full_g():
    sim, net = make_net()
    assert net.effective_g() == 3_200


def test_local_traffic_shrinks_g():
    sim, net = make_net()
    # Nearest-neighbour traffic only: nodes 0 and 1 are adjacent.
    for _ in range(20):
        net.one_way(0, 1)
    assert net.effective_g() < 3_200
    # One hop vs the mesh's uniform mean (> 2 hops for 4x4).
    assert net.effective_g() <= 3_200 // 2


def test_uniform_traffic_keeps_g():
    sim, net = make_net(nprocs=4)
    # Hit all pairs equally: mean observed == uniform mean.
    for src in range(4):
        for dst in range(4):
            if src != dst:
                net.one_way(src, dst)
    assert net.effective_g() == net.params.g_ns


def test_g_never_exceeds_bisection_estimate():
    sim, net = make_net(nprocs=16)
    # Worst-case distant traffic cannot push g above the configured
    # value (the factor is clamped at 1).
    for _ in range(10):
        net.one_way(0, 15)
    assert net.effective_g() <= net.params.g_ns


def test_non_adaptive_ignores_history():
    sim, net = make_net(adaptive=False)
    for _ in range(20):
        net.one_way(0, 1)
    assert net.effective_g() == net.params.g_ns


def test_adaptive_reduces_ep_mesh_contention():
    """The paper's worst pessimism case (Fig. 11) improves."""
    strict = simulate(
        tiny_app("ep", 16), "clogp", tiny_config(16, "mesh")
    ).mean_contention_us
    adaptive = simulate(
        tiny_app("ep", 16), "clogp", tiny_config(16, "mesh", adaptive_g=True)
    ).mean_contention_us
    target = simulate(
        tiny_app("ep", 16), "target", tiny_config(16, "mesh")
    ).mean_contention_us
    assert adaptive < strict
    assert abs(adaptive - target) < abs(strict - target)


def test_adaptive_g_keeps_apps_correct():
    for app_name in ("fft", "cholesky"):
        config = tiny_config(8, "mesh", adaptive_g=True)
        result = simulate(tiny_app(app_name, 8), "clogp", config,
                          check_invariants=True)
        assert result.verified


def test_adaptive_flag_in_config():
    assert not SystemConfig().adaptive_g
    assert SystemConfig(adaptive_g=True).adaptive_g
