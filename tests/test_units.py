"""Unit conversions."""

from repro import units


def test_us_conversion():
    assert units.us(1.6) == 1_600
    assert units.us(0) == 0


def test_ms_conversion():
    assert units.ms(2.5) == 2_500_000


def test_seconds_conversion():
    assert units.seconds(1) == 1_000_000_000


def test_ns_to_us_roundtrip():
    assert units.ns_to_us(units.us(3.2)) == 3.2


def test_ns_to_ms():
    assert units.ns_to_ms(1_500_000) == 1.5


def test_cycles_to_ns():
    # 33 MHz SPARC: 30 ns per cycle.
    assert units.cycles_to_ns(10, 30) == 300


def test_bytes_to_link_ns_paper_L():
    # 32-byte message on a 20 MB/s (50 ns/byte) link: the paper's L.
    assert units.bytes_to_link_ns(32, 50) == 1_600


def test_size_constants():
    assert units.KB == 1_024
    assert units.MB == 1_024 ** 2


def test_rounding():
    assert units.us(0.0004) == 0
    assert units.us(0.0006) == 1
