"""Compiled event-core tier and flat-op semantics.

Two batteries:

* Flat ops (``SoaSimulator.flat_transmit``): the tag-dispatched leaf
  transmits that replace the highest-frequency spawned generators.
  Their contract is *step-for-step* timeline parity with the generator
  twin, which the cross-kernel simulation parity tests pin end to end;
  here we pin the mechanics directly -- grant order under contention,
  multi-leg chaining, accounting, deadlock bookkeeping, and the
  guarded (method-form) dispatch path.

* The compiled tier: selection precedence with the new ``compiled``
  kernel name, bit-identical results against both pure-Python kernels,
  and -- via subprocesses, because ``HAVE_EXTENSION`` is an
  import-time decision -- the graceful-degradation paths when the
  ``_csoa`` extension is absent, disabled (``REPRO_CSOA=0``), or
  broken.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.core.runner import simulate_spec
from repro.engine import make_simulator, resolve_kernel
from repro.engine.compiled import HAVE_EXTENSION, CompiledSimulator
from repro.engine.core import Simulator
from repro.engine.soa import SoaSimulator
from repro.errors import DeadlockError
from repro.network.link import Link
from repro.runspec import RunSpec

needs_extension = pytest.mark.skipif(
    not HAVE_EXTENSION, reason="_csoa extension not built"
)

# Both flat-capable kernels must execute flat ops identically; the
# compiled tier only joins the matrix when the extension is present.
FLAT_KERNELS = [SoaSimulator] + (
    [CompiledSimulator] if HAVE_EXTENSION else []
)


class _FakeFabric:
    """Just the counters ``_flat_wake`` charges at settle time."""

    def __init__(self):
        self.messages = 0
        self.bytes_transported = 0
        self.total_latency_ns = 0
        self.total_contention_ns = 0


# -- flat-op mechanics --------------------------------------------------------


@pytest.mark.parametrize("cls", FLAT_KERNELS)
def test_flat_transmit_uncontended_single_leg(cls):
    sim = cls()
    fabric = _FakeFabric()
    path = tuple(Link(sim, i, i + 1) for i in range(3))
    shell = sim.flat_transmit(fabric, ((path, 64, 120),), value=120)
    sim.run()
    # N acquire words + 1 transmit-start word + 1 settle row + 1 shell
    # dispatch: the same N+3 events the generator twin costs.
    assert sim.events_executed == len(path) + 3
    assert shell.triggered and shell.value == 120
    assert sim.now == 120
    assert fabric.messages == 1
    assert fabric.bytes_transported == 64
    assert fabric.total_latency_ns == 120
    assert fabric.total_contention_ns == 0
    for link in path:
        assert link.messages == 1
        assert link.bytes_carried == 64
        assert link.busy_ns == 120
        assert link.in_use == 0
        assert link.grants == 1
    profile = sim.engine_profile()
    assert profile["flat_posts"] == 1


@pytest.mark.parametrize("cls", FLAT_KERNELS)
def test_flat_transmits_serialize_fifo_on_shared_link(cls):
    sim = cls()
    fabric = _FakeFabric()
    link = Link(sim, 0, 1)
    first = sim.flat_transmit(fabric, (((link,), 8, 50),), value="a")
    second = sim.flat_transmit(fabric, (((link,), 8, 50),), value="b")
    order = []
    sim.spawn(_watch(order, first, "a"))
    sim.spawn(_watch(order, second, "b"))
    sim.run()
    assert order == [("a", 50), ("b", 100)]
    # The second op queued for 50 ns on the busy link.
    assert link.total_wait_ns == 50
    assert link.grants == 2
    assert fabric.total_contention_ns == 50
    assert fabric.messages == 2


def _watch(order, shell, tag):
    yield shell
    order.append((tag, shell.sim.now))


@pytest.mark.parametrize("cls", FLAT_KERNELS)
def test_flat_transmit_two_legs_chain_at_settle(cls):
    sim = cls()
    fabric = _FakeFabric()
    out = Link(sim, 0, 1)
    back = Link(sim, 1, 0)
    shell = sim.flat_transmit(
        fabric, (((out,), 16, 30), ((back,), 16, 30)), value=None
    )
    sim.run()
    assert shell.triggered
    assert sim.now == 60  # legs run back to back
    assert fabric.messages == 2
    assert fabric.total_latency_ns == 60
    assert out.messages == 1 and back.messages == 1
    assert out.in_use == 0 and back.in_use == 0


@pytest.mark.parametrize("cls", FLAT_KERNELS)
def test_flat_op_counts_as_blocked_for_deadlock(cls):
    sim = cls()
    fabric = _FakeFabric()
    link = Link(sim, 0, 1)
    link.in_use = 1  # held forever by nobody: the op can never proceed
    sim.flat_transmit(fabric, (((link,), 8, 10),))
    with pytest.raises(DeadlockError):
        sim.run()


def test_flat_ops_run_under_guarded_loop():
    # until= runs take the method-form dispatch (_execute_word /
    # _execute_row); flat words and K_FLAT rows must route there too.
    sim = SoaSimulator()
    fabric = _FakeFabric()
    link = Link(sim, 0, 1)
    shell = sim.flat_transmit(fabric, (((link,), 8, 40),))
    sim.run(until=100)
    assert shell.triggered
    assert sim.now == 100
    assert fabric.messages == 1


def test_flat_capability_flags():
    assert Simulator._flat_capable is False
    assert SoaSimulator._flat_capable is True
    assert CompiledSimulator._flat_capable is True


@pytest.mark.parametrize("cls", FLAT_KERNELS)
def test_flat_op_slots_recycle(cls):
    sim = cls()
    fabric = _FakeFabric()
    link = Link(sim, 0, 1)
    for _ in range(4):
        sim.flat_transmit(fabric, (((link,), 8, 10),))
        sim.run()
    # Sequential ops reuse one table slot.
    assert len(sim._flat_ops) == 1
    assert sim._flat_free == [0]
    assert sim.engine_profile()["flat_posts"] == 4


# -- flat memory-transaction mechanics ----------------------------------------
#
# The transaction program (request leg -> home lock -> directory plan
# -> service sleep -> data leg) is pinned end to end by the cross-
# kernel simulation parity tests; here we pin the contended paths
# directly with a stub directory, where grant order is observable.


class _Plan:
    """Directory plan stub: a home-local read served from memory."""

    hit = False
    fast = False
    from_memory = True
    source = None
    invalidated = ()
    had_data = False
    sharing_writeback = False
    writeback = None


class _FakeMachine:
    def __init__(self):
        self.writebacks = []

    def _post_writeback(self, pid, writeback):
        self.writebacks.append((pid, writeback))


#: Memory service time used by the stub plans below.
_MEM_NS = 100


def _home_ctx(sim, calls):
    """Machine context tuple for home-local read transactions.

    Home-local ops never touch routes or message legs, so those
    entries can stay empty; the plan callout records its arguments.
    """
    fabric = _FakeFabric()

    def plan_read(pid, block):
        calls.append((pid, block))
        return _Plan()

    def plan_write(pid, block):  # pragma: no cover - read-only stubs
        raise AssertionError("read-only scenario planned a write")

    return (fabric, [], 1, 8, 64, 30, 120, _MEM_NS, 60, 0,
            plan_read, plan_write, _FakeMachine())


@pytest.mark.parametrize("cls", FLAT_KERNELS)
def test_home_lock_fifo_with_mixed_flat_and_generator_waiters(cls):
    # Three waiters queue on a held home lock in arrival order: a flat
    # transaction, a plain generator (`yield lock`), another flat
    # transaction.  Resource.release must grant strictly FIFO across
    # the two waiter encodings (complement-packed flat words vs plain
    # process ints) -- a LIFO or kind-segregated grant would reorder
    # the completion log.
    sim = cls()
    calls = []
    ctx = _home_ctx(sim, calls)
    from repro.engine import Resource

    lock = Resource(sim, capacity=1, name="dir5")
    log = []

    def holder():
        yield lock
        yield 50
        lock.release()

    def flat_requester(tag, arrive):
        yield arrive
        result = yield sim.flat_transact(ctx, 0, 5, 0, lock, False)
        log.append((tag, sim.now, result))

    def generator_waiter():
        yield 20
        yield lock
        log.append(("gen", sim.now, None))
        lock.release()

    sim.spawn(holder(), name="holder")
    sim.spawn(flat_requester("flatA", 10), name="flatA")
    sim.spawn(generator_waiter(), name="gen")
    sim.spawn(flat_requester("flatB", 30), name="flatB")
    sim.run()
    assert log == [
        ("flatA", 50 + _MEM_NS, (0, _MEM_NS)),
        ("gen", 50 + _MEM_NS, None),
        ("flatB", 50 + 2 * _MEM_NS, (0, _MEM_NS)),
    ]
    assert calls == [(0, 5), (0, 5)]
    assert lock.in_use == 0 and not lock._waiters
    assert lock.grants == 4


@needs_extension
@pytest.mark.parametrize(
    "splits",
    [(25,), (25, 60)],
    ids=["python-parks-c-grants", "python-grants-c-wakes"],
)
def test_parked_flat_op_wakes_across_kernel_boundary(splits):
    # Guarded runs (`until=`) use the Python word loop even on the
    # compiled tier, so splitting one run pins the handoff contract:
    # an op parked (and possibly granted) by the Python loop must be
    # granted/woken by the C loop from the same kernel state, and the
    # whole splice must be event-identical to an unsplit SoA run.
    from repro.engine import Resource

    def scenario(sim):
        calls = []
        ctx = _home_ctx(sim, calls)
        lock = Resource(sim, capacity=1, name="dir5")
        log = []

        def holder():
            yield lock
            yield 50
            lock.release()

        def requester():
            yield 10
            result = yield sim.flat_transact(ctx, 0, 5, 0, lock, False)
            log.append((sim.now, result))

        sim.spawn(holder(), name="holder")
        sim.spawn(requester(), name="req")
        return log, lock

    ref = SoaSimulator()
    ref_log, _ = scenario(ref)
    ref.run()

    sim = CompiledSimulator()
    log, lock = scenario(sim)
    sim.run(until=splits[0])
    assert sim.now == splits[0] and not log
    assert lock.in_use == 1 and len(lock._waiters) == 1
    for t in splits[1:]:
        sim.run(until=t)
    sim.run()
    assert log == ref_log == [(50 + _MEM_NS, (0, _MEM_NS))]
    assert sim.now == ref.now
    assert sim.events_executed == ref.events_executed
    assert lock.in_use == 0 and not lock._waiters


# -- compiled tier: parity ----------------------------------------------------


@needs_extension
def test_compiled_matches_on_mixed_scenario():
    from tests.test_engine_soa import _mixed_scenario

    assert _mixed_scenario(CompiledSimulator()) == _mixed_scenario(
        Simulator()
    )


@needs_extension
def test_compiled_matches_both_kernels_on_simulation(quick_spec):
    results = {}
    for kernel in ("object", "soa", "compiled"):
        spec = quick_spec(engine_kernel=kernel, check="off")
        results[kernel] = simulate_spec(spec)
    obj, soa, comp = (
        results["object"], results["soa"], results["compiled"]
    )

    def key(r):
        return (r.total_ns, r.messages, r.sim_events, r.buckets)

    assert key(comp) == key(obj) == key(soa)
    assert comp.engine["kernel"] == "compiled"
    assert comp.engine["extension_loaded"] == 1
    assert comp.engine["heap_pops"] == soa.engine["heap_pops"]
    assert comp.engine["ring_pops"] == soa.engine["ring_pops"]
    assert comp.engine["rows_recycled"] == soa.engine["rows_recycled"]
    assert comp.engine["flat_posts"] == soa.engine["flat_posts"] > 0


@needs_extension
def test_compiled_guarded_runs_share_python_loop():
    outcomes = []
    for cls in (Simulator, CompiledSimulator):
        sim = cls()

        def sleeper(period):
            while True:
                yield period

        sim.spawn(sleeper(10))
        sim.spawn(sleeper(4))
        executed = sim.run(until=37)
        outcomes.append((executed, sim.now, sim.events_executed))
    assert outcomes[0] == outcomes[1]


@needs_extension
def test_compiled_profile_reports_extension():
    sim = CompiledSimulator()

    def once():
        yield 1

    sim.spawn(once())
    sim.run()
    profile = sim.engine_profile()
    assert profile["kernel"] == "compiled"
    assert profile["extension_loaded"] == 1


# -- compiled tier: selection -------------------------------------------------


@needs_extension
def test_selection_precedence_matrix(monkeypatch, quick_spec):
    # Explicit knob, no env.
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert resolve_kernel("compiled") == "compiled"
    assert type(make_simulator(kernel="compiled")) is CompiledSimulator
    # Env fills in auto.
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    assert resolve_kernel("auto") == "compiled"
    # Explicit knob beats env.
    assert resolve_kernel("soa") == "soa"
    assert type(make_simulator(kernel="soa")) is SoaSimulator
    monkeypatch.setenv("REPRO_ENGINE", "soa")
    assert resolve_kernel("compiled") == "compiled"
    # Config knob flows through the run layer.
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    result = simulate_spec(quick_spec(engine_kernel="compiled", check="off"))
    assert result.engine["kernel"] == "compiled"


@needs_extension
def test_hooked_checkers_still_force_object_kernel(monkeypatch):
    from repro.checkers.base import Checker

    class Hooked(Checker):
        name = "hooked"

        def on_event(self, at, seq, action):
            pass

    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    assert type(make_simulator(checkers=(Hooked(),))) is Simulator


# -- compiled tier: import-time fallback (subprocess) -------------------------
#
# HAVE_EXTENSION is decided when repro.engine.compiled first imports,
# so the no-extension arms need a fresh interpreter, not monkeypatch.


def _run_py(code, **env_overrides):
    env = dict(os.environ)
    env.update(env_overrides)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, timeout=120,
    )


def test_repro_csoa_off_selects_soa_silently():
    proc = _run_py(
        "import warnings\n"
        "from repro.engine import HAVE_EXTENSION, resolve_kernel\n"
        "assert not HAVE_EXTENSION\n"
        "with warnings.catch_warnings(record=True) as caught:\n"
        "    warnings.simplefilter('always')\n"
        "    assert resolve_kernel('auto') == 'soa'\n"
        "assert not caught, [str(w.message) for w in caught]\n"
        "print('ok')\n",
        REPRO_CSOA="0", REPRO_ENGINE="",
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


def test_explicit_compiled_degrades_with_warning_not_error():
    proc = _run_py(
        "import warnings\n"
        "from repro.engine import resolve_kernel, make_simulator\n"
        "with warnings.catch_warnings(record=True) as caught:\n"
        "    warnings.simplefilter('always')\n"
        "    assert resolve_kernel('compiled') == 'soa'\n"
        "assert any(issubclass(w.category, RuntimeWarning) for w in caught)\n"
        "assert any('falling back' in str(w.message) for w in caught)\n"
        "from repro.engine.soa import SoaSimulator\n"
        "import warnings\n"
        "with warnings.catch_warnings():\n"
        "    warnings.simplefilter('ignore')\n"
        "    sim = make_simulator(kernel='compiled')\n"
        "assert type(sim) is SoaSimulator\n"
        "print('ok')\n",
        REPRO_CSOA="0", REPRO_ENGINE="",
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


def test_repro_engine_compiled_env_on_bare_host_still_runs():
    # The full selection path: REPRO_ENGINE=compiled with no extension
    # must complete a real run on the SoA fallback, warning only.
    proc = _run_py(
        "import warnings\n"
        "warnings.simplefilter('default')\n"
        "from repro.runspec import RunSpec\n"
        "from repro.core.runner import simulate_spec\n"
        "spec = RunSpec.build('jacobi', 'target', 4, 'mesh',\n"
        "                     preset='quick', seed=7, check='off')\n"
        "result = simulate_spec(spec)\n"
        "assert result.engine['kernel'] == 'soa'\n"
        "assert result.engine['extension_loaded'] == 0\n"
        "print('ok')\n",
        REPRO_CSOA="0", REPRO_ENGINE="compiled",
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


def test_csoa_disabled_flat_transactions_match_spec():
    # REPRO_CSOA=0 pins the pure-Python SoA flat-transaction path as
    # the specification: a full target-machine run in a fresh
    # interpreter with the extension disabled must reproduce the same
    # simulation invariants as this process's kernel (whichever tier
    # selection picked here), and must actually have taken the flat
    # path rather than the generator twins.
    proc = _run_py(
        "from repro.runspec import RunSpec\n"
        "from repro.core.runner import simulate_spec\n"
        "spec = RunSpec.build('jacobi', 'target', 4, 'mesh',\n"
        "                     preset='quick', seed=7, check='off')\n"
        "r = simulate_spec(spec)\n"
        "print(r.engine['kernel'], r.engine['extension_loaded'],\n"
        "      r.sim_events, r.messages, r.total_ns,\n"
        "      r.engine['flat_tx'], r.engine['flat_posts'])\n",
        REPRO_CSOA="0", REPRO_ENGINE="",
    )
    assert proc.returncode == 0, proc.stderr
    kernel, loaded, events, messages, total_ns, flat_tx, flat_posts = (
        proc.stdout.split()
    )
    assert kernel == "soa" and loaded == "0"
    assert int(flat_tx) > 0 and int(flat_posts) > 0

    spec = RunSpec.build("jacobi", "target", 4, "mesh",
                         preset="quick", seed=7, check="off")
    ref = simulate_spec(spec)
    assert (int(events), int(messages), int(total_ns)) == (
        ref.sim_events, ref.messages, ref.total_ns
    )


def test_broken_extension_import_falls_back():
    # A corrupt .so raises ImportError; emulate by poisoning
    # sys.modules before repro.engine.compiled imports.
    proc = _run_py(
        "import sys\n"
        "sys.modules['repro.engine._csoa'] = None\n"
        "from repro.engine import HAVE_EXTENSION, resolve_kernel\n"
        "assert not HAVE_EXTENSION\n"
        "assert resolve_kernel('auto') == 'soa'\n"
        "print('ok')\n",
        REPRO_ENGINE="",
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


# -- fixtures -----------------------------------------------------------------


@pytest.fixture
def quick_spec():
    """Factory for a small deterministic jacobi spec."""
    def build(**overrides):
        kwargs = dict(preset="quick", seed=7)
        kwargs.update(overrides)
        return RunSpec.build("jacobi", "target", 4, "mesh", **kwargs)
    return build
