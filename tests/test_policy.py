"""Retry policy, error taxonomy, and wall-clock deadline enforcement.

The supervision tier only works if its primitives are deterministic:
the backoff schedule must be a pure function of (policy, spec key,
attempt) so two runs of the same sweep retry identically, and only
*transient* errors may ever be retried -- a permanent error reproduces
on every attempt, so retrying it just delays the diagnosis.
"""

import signal
import time

import pytest

import repro.exec.backend as backend_module
from repro import RunSpec
from repro.errors import (
    ApplicationError,
    ConfigError,
    DeadlineExpiredError,
    DeadlockError,
    InvariantError,
    PermanentError,
    ReproError,
    RetryLimitError,
    TransientError,
    WatchdogError,
    WorkerCrashError,
)
from repro.exec import PointFailure, execute_spec
from repro.exec.policy import RetryPolicy, deadline_guard, legacy_policy


def quick_spec(**overrides) -> RunSpec:
    kwargs = dict(app="fft", machine="ideal", nprocs=2, preset="quick")
    kwargs.update(overrides)
    return RunSpec.build(**kwargs)


# -- error taxonomy ------------------------------------------------------------------


def test_transient_errors_are_transient():
    """The retryable class: host trouble and exhausted-but-legitimate
    protocol retries, all worth a second attempt."""
    transients = [
        RetryLimitError(0, 1, 3, 12345),
        WatchdogError(10, 1000, 2, 5),
        DeadlineExpiredError(5.0, 6.2),
        WorkerCrashError("fft/clogp/full/p=2", 2),
    ]
    for exc in transients:
        assert isinstance(exc, TransientError), exc
        assert isinstance(exc, ReproError), exc
        assert not isinstance(exc, PermanentError), exc


def test_permanent_errors_are_permanent():
    """Deterministic failures: same spec, same outcome, every time."""
    permanents = [
        ConfigError("bad knob"),
        DeadlockError(1, 500),
        InvariantError("coherence.swmr", 500, "two writers"),
        ApplicationError("bad phase"),
    ]
    for exc in permanents:
        assert isinstance(exc, PermanentError), exc
        assert not isinstance(exc, TransientError), exc


def test_should_retry_only_transients_within_budget():
    policy = RetryPolicy(max_retries=2)
    transient = RetryLimitError(0, 1, 3, 12345)
    assert policy.should_retry(transient, attempts=1)
    assert policy.should_retry(transient, attempts=2)
    assert not policy.should_retry(transient, attempts=3)  # budget spent
    assert not policy.should_retry(ConfigError("nope"), attempts=1)
    assert not policy.should_retry(DeadlockError(1, 500), attempts=1)


# -- backoff schedule ----------------------------------------------------------------


def test_backoff_schedule_is_deterministic():
    """Same (policy, key) -> bit-identical delays, like everything else."""
    policy = RetryPolicy(max_retries=4, base_delay_s=0.1, seed=7)
    assert policy.schedule("abc123") == policy.schedule("abc123")
    twin = RetryPolicy(max_retries=4, base_delay_s=0.1, seed=7)
    assert twin.schedule("abc123") == policy.schedule("abc123")


def test_backoff_jitter_decorrelates_keys_and_seeds():
    """Different points (and different seeds) must not retry in
    lockstep, or a mass failure resubmits everything simultaneously."""
    policy = RetryPolicy(max_retries=3, base_delay_s=0.1, seed=7)
    assert policy.schedule("pointA") != policy.schedule("pointB")
    reseeded = RetryPolicy(max_retries=3, base_delay_s=0.1, seed=8)
    assert reseeded.schedule("pointA") != policy.schedule("pointA")


def test_backoff_is_exponential_with_ceiling():
    policy = RetryPolicy(max_retries=6, base_delay_s=1.0, backoff_factor=2.0,
                         max_delay_s=5.0, jitter=0.0)
    assert policy.schedule() == [1.0, 2.0, 4.0, 5.0, 5.0, 5.0]


def test_jitter_stays_within_the_configured_fraction():
    policy = RetryPolicy(max_retries=1, base_delay_s=1.0, jitter=0.5, seed=3)
    for key in ("a", "b", "c", "d"):
        delay = policy.delay_s(1, key)
        assert 0.5 <= delay <= 1.0


def test_zero_base_delay_means_immediate_retries():
    """The historical behaviour (and the test-suite default): retry
    without sleeping at all."""
    policy = legacy_policy(retries=3)
    assert policy.schedule("anything") == [0.0, 0.0, 0.0]


def test_policy_validates_its_fields():
    with pytest.raises(ConfigError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ConfigError):
        RetryPolicy(base_delay_s=-0.1)
    with pytest.raises(ConfigError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ConfigError):
        RetryPolicy(jitter=1.5)


def test_execute_spec_sleeps_the_policy_delays(monkeypatch):
    """The retry loop must apply exactly the policy's schedule."""
    def dying(app, machine_name, config, **kwargs):
        raise RetryLimitError(0, 1, 3, 12345)

    monkeypatch.setattr(backend_module, "simulate", dying)
    policy = RetryPolicy(max_retries=2, base_delay_s=0.1, seed=5)
    slept = []
    spec = quick_spec()
    outcome = execute_spec(spec, policy=policy, sleep=slept.append)
    assert isinstance(outcome, PointFailure)
    assert outcome.attempts == 3
    assert slept == policy.schedule(spec.spec_digest())


def test_execute_spec_does_not_retry_permanent_errors(monkeypatch):
    calls = {"count": 0}

    def misconfigured(app, machine_name, config, **kwargs):
        calls["count"] += 1
        raise ConfigError("deterministically broken")

    monkeypatch.setattr(backend_module, "simulate", misconfigured)
    outcome = execute_spec(quick_spec(), retries=5)
    assert isinstance(outcome, PointFailure)
    assert outcome.error == "ConfigError"
    assert outcome.attempts == 1
    assert calls["count"] == 1


# -- deadline guard ------------------------------------------------------------------


def test_deadline_guard_interrupts_an_overlong_body():
    with pytest.raises(DeadlineExpiredError) as excinfo:
        with deadline_guard(0.05) as armed:
            assert armed
            time.sleep(5.0)
    assert excinfo.value
    assert "0.05" in str(excinfo.value)


def test_deadline_guard_unarmed_without_a_deadline():
    with deadline_guard(None) as armed:
        assert not armed
    with deadline_guard(0.0) as armed:
        assert not armed


def test_deadline_guard_restores_the_previous_handler():
    previous = signal.getsignal(signal.SIGALRM)
    with deadline_guard(10.0):
        assert signal.getsignal(signal.SIGALRM) is not previous
    assert signal.getsignal(signal.SIGALRM) is previous
    # The timer itself is disarmed too: nothing fires later.
    assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0


def test_deadline_expiry_is_retried_then_recorded(monkeypatch):
    """An attempt blowing its deadline is transient: execute_spec
    retries it, and only budget exhaustion records the failure."""
    calls = {"count": 0}

    def slow(app, machine_name, config, **kwargs):
        calls["count"] += 1
        time.sleep(5.0)

    monkeypatch.setattr(backend_module, "simulate", slow)
    outcome = execute_spec(quick_spec(), retries=1, deadline_s=0.05)
    assert isinstance(outcome, PointFailure)
    assert outcome.error == "DeadlineExpiredError"
    assert outcome.attempts == 2
    assert calls["count"] == 2


def test_deadline_guard_leaves_a_fast_run_alone():
    spec = quick_spec()
    outcome = execute_spec(spec, deadline_s=60.0)
    assert not isinstance(outcome, PointFailure)
