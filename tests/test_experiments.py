"""Experiment registry, sweep runner, and report rendering."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    SweepRunner,
    experiment_ids,
    get_experiment,
    render_figure,
    render_run_table,
)
from repro.experiments.workloads import app_params, processor_sweep


# -- registry -------------------------------------------------------------------


def test_all_twenty_paper_figures_are_registered():
    figures = [e for e in experiment_ids() if e.startswith("fig")]
    assert figures == [f"fig{i:02d}" for i in range(1, 21)]


def test_section7_studies_registered():
    assert "tab-speed" in EXPERIMENTS
    assert "exp-ggap" in EXPERIMENTS


def test_experiment_fields_are_complete():
    for experiment in EXPERIMENTS.values():
        assert experiment.app in {"ep", "is", "cg", "fft", "cholesky"}
        assert experiment.topology in {"full", "cube", "mesh"}
        assert experiment.metric in {
            "latency", "contention", "execution", "simspeed", "ggap",
            "gadapt", "protocol",
        }
        assert experiment.description
        assert experiment.expected
        assert experiment.paper_ref


def test_metric_coverage_matches_paper():
    metrics = [e.metric for e in EXPERIMENTS.values()]
    assert metrics.count("latency") == 5  # Figs 1-5
    assert metrics.count("contention") == 8  # Figs 6-11, 19-20
    assert metrics.count("execution") == 7  # Figs 12-18


def test_every_app_appears_in_every_metric_family():
    by_metric = {}
    for experiment in EXPERIMENTS.values():
        by_metric.setdefault(experiment.metric, set()).add(experiment.app)
    assert by_metric["latency"] == {"ep", "is", "cg", "fft", "cholesky"}
    assert by_metric["execution"] == {"ep", "is", "cg", "fft", "cholesky"}


def test_get_experiment_errors_helpfully():
    with pytest.raises(KeyError):
        get_experiment("fig99")


# -- workload presets -------------------------------------------------------------


def test_presets_exist_for_every_app():
    for preset in ("default", "quick"):
        for app in ("ep", "is", "cg", "fft", "cholesky"):
            params = app_params(app, preset)
            assert isinstance(params, dict)


def test_quick_preset_is_smaller():
    assert app_params("fft", "quick")["points"] < app_params("fft")["points"]
    assert processor_sweep("quick") != processor_sweep("default")


def test_unknown_preset():
    with pytest.raises(KeyError):
        app_params("fft", "huge")


# -- runner -----------------------------------------------------------------------------


@pytest.fixture(scope="module")
def runner():
    return SweepRunner(preset="quick", processors=(1, 4))


def test_run_one_is_memoized(runner):
    first = runner.run_one("fft", "clogp", "full", 4)
    second = runner.run_one("fft", "clogp", "full", 4)
    assert first is second


def test_figure_data_shape(runner):
    data = runner.run_experiment(get_experiment("fig01"))
    assert data.processors == (1, 4)
    assert set(data.series) == {"target", "logp", "clogp"}
    for values in data.series.values():
        assert len(values) == 2
    assert data.value("target", 4) == data.series["target"][1]


def test_shared_runs_between_figures(runner):
    """Fig 17 (execution) and Fig 19 (contention) share CG-mesh runs."""
    fig17 = runner.run_experiment(get_experiment("fig17"))
    fig19 = runner.run_experiment(get_experiment("fig19"))
    assert fig17.results["target"][0] is fig19.results["target"][0]


def test_simspeed_experiment(runner):
    data = runner.run_experiment(get_experiment("tab-speed"))
    assert set(data.series) == {"target", "logp", "clogp"}
    # Event counts are positive and LogP is the heaviest to simulate at
    # the multi-processor point.
    index = data.processors.index(4)
    assert data.series["logp"][index] > data.series["clogp"][index]


def test_ggap_experiment(runner):
    data = runner.run_experiment(get_experiment("exp-ggap"))
    assert set(data.series) == {"target", "clogp", "clogp-relaxed-g"}


# -- report -------------------------------------------------------------------------------


def test_render_figure_contains_series(runner):
    data = runner.run_experiment(get_experiment("fig01"))
    text = render_figure(data)
    assert "fig01" in text
    assert "target" in text and "logp" in text and "clogp" in text
    assert "Figure 1" in text


def test_render_run_table(runner):
    result = runner.run_one("fft", "clogp", "full", 4)
    text = render_run_table([result])
    assert "fft" in text and "clogp" in text and "yes" in text
