"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fft" in out and "target" in out and "fig01" in out


def test_params(capsys):
    assert main(["params", "--topology", "mesh", "-p", "32"]) == 0
    out = capsys.readouterr().out
    assert "L = 1.60 us" in out
    assert "g = 6.40 us" in out  # 0.8 * 8 columns


def test_params_full(capsys):
    assert main(["params", "--topology", "full", "-p", "8"]) == 0
    out = capsys.readouterr().out
    assert "g = 0.40 us" in out  # 3.2/8


def test_run(capsys):
    code = main([
        "run", "--app", "fft", "--machine", "clogp", "--topology", "cube",
        "-p", "2", "--preset", "quick",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fft" in out and "clogp" in out
    assert "cpu0" in out and "cpu1" in out


def test_figure(capsys):
    code = main(["figure", "fig03", "--preset", "quick"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig03" in out and "EP on full" in out


def test_unknown_figure_raises():
    with pytest.raises(KeyError):
        main(["figure", "fig99", "--preset", "quick"])


def test_parser_rejects_bad_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--app", "nosuch"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_scalability(capsys):
    code = main([
        "scalability", "--app", "fft", "--machine", "clogp",
        "--sweep", "1,4", "--preset", "quick",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup" in out and "fft" in out


def test_profile(capsys):
    code = main([
        "profile", "--app", "is", "-p", "2", "--preset", "quick",
        "--machine", "ideal",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "pid" in out and "compute_us" in out


def test_trace_record_and_replay(capsys, tmp_path):
    path = str(tmp_path / "t.json")
    code = main([
        "trace", "record", "--app", "fft", "-p", "2", "--out", path,
        "--preset", "quick",
    ])
    assert code == 0
    code = main(["trace", "replay", path, "--machine", "clogp"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fft@trace" in out


def test_trace_replay_warns_cross_machine(capsys, tmp_path):
    path = str(tmp_path / "t.json")
    main([
        "trace", "record", "--app", "is", "-p", "2", "--out", path,
        "--preset", "quick", "--machine", "clogp",
    ])
    main(["trace", "replay", path, "--machine", "logp"])
    out = capsys.readouterr().out
    assert "trace-driven approximation" in out


# -- fault-injection flags ------------------------------------------------------------


def test_run_with_fault_flags_prints_retry_bucket(capsys):
    code = main([
        "run", "--app", "fft", "--machine", "clogp", "-p", "2",
        "--preset", "quick", "--fault-drop", "0.02", "--fault-seed", "9",
        "--retries", "6",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "retry=" in out


def test_run_without_fault_flags_hides_retry_bucket(capsys):
    code = main([
        "run", "--app", "fft", "--machine", "clogp", "-p", "2",
        "--preset", "quick",
    ])
    assert code == 0
    assert "retry=" not in capsys.readouterr().out


def test_fault_flags_have_help_text():
    import io
    from contextlib import redirect_stdout

    with pytest.raises(SystemExit):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            build_parser().parse_args(["run", "--help"])
    help_text = buffer.getvalue()
    for flag in ("--fault-drop", "--fault-delay", "--fault-seed", "--retries"):
        assert flag in help_text


def test_figure_with_fault_and_resume(capsys, tmp_path):
    checkpoint = str(tmp_path / "ckpt.json")
    code = main([
        "figure", "fig03", "--preset", "quick", "--fault-drop", "0.01",
        "--fault-delay", "0.01", "--resume", checkpoint,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig03" in out
    import os
    assert os.path.exists(checkpoint)
    # Re-running with the checkpoint resumes instantly and agrees.
    code = main([
        "figure", "fig03", "--preset", "quick", "--fault-drop", "0.01",
        "--fault-delay", "0.01", "--resume", checkpoint,
    ])
    assert code == 0
    assert capsys.readouterr().out == out


def test_run_rejects_bad_fault_rate():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        main([
            "run", "--app", "fft", "--machine", "clogp", "-p", "2",
            "--preset", "quick", "--fault-drop", "1.5",
        ])


# -- parallel execution and result caching ------------------------------------------


def test_figure_with_jobs_matches_serial(capsys):
    assert main(["figure", "fig03", "--preset", "quick"]) == 0
    serial_out = capsys.readouterr().out
    assert main(["figure", "fig03", "--preset", "quick", "--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial_out


def test_figure_with_cache_dir_warm_run_skips_simulation(
        capsys, tmp_path, monkeypatch):
    import repro.exec.backend as backend_module

    cache = str(tmp_path / "cache")
    argv = ["figure", "fig03", "--preset", "quick", "--cache-dir", cache]
    assert main(argv) == 0
    cold_out = capsys.readouterr().out

    def refuse(*args, **kwargs):
        raise AssertionError("warm cache run must not simulate")

    monkeypatch.setattr(backend_module, "simulate", refuse)
    assert main(argv) == 0
    assert capsys.readouterr().out == cold_out


def test_cache_dir_env_var_enables_cache(capsys, tmp_path, monkeypatch):
    cache = tmp_path / "env-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
    assert main(["figure", "fig03", "--preset", "quick"]) == 0
    capsys.readouterr()
    assert cache.exists() and any(cache.iterdir())


def test_no_cache_overrides_cache_dir(capsys, tmp_path):
    cache = tmp_path / "cache"
    assert main([
        "figure", "fig03", "--preset", "quick",
        "--cache-dir", str(cache), "--no-cache",
    ]) == 0
    capsys.readouterr()
    assert not cache.exists()


def test_exec_flags_have_help_text():
    import io
    from contextlib import redirect_stdout

    with pytest.raises(SystemExit):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            build_parser().parse_args(["figure", "--help"])
    help_text = buffer.getvalue()
    for flag in ("--jobs", "--cache-dir", "--no-cache", "--resume",
                 "--deadline-s", "--max-retries"):
        assert flag in help_text


# -- supervision: exit codes, deadlines, cache verify -------------------------------


def test_figure_exit_code_distinguishes_point_failures(capsys, monkeypatch):
    """A sweep that finishes with failed points exits 3 ('completed
    with point failures'), distinct from 0 (clean) and 1 (aborted)."""
    import repro.exec.backend as backend_module
    from repro.cli import EXIT_POINT_FAILURES
    from repro.errors import RetryLimitError

    real_simulate = backend_module.simulate

    def flaky(app, machine_name, config, **kwargs):
        if machine_name == "logp":
            raise RetryLimitError(0, 1, 3, 12345)
        return real_simulate(app, machine_name, config, **kwargs)

    monkeypatch.setattr(backend_module, "simulate", flaky)
    code = main(["figure", "fig01", "--preset", "quick"])
    assert code == EXIT_POINT_FAILURES == 3
    captured = capsys.readouterr()
    assert "fig01" in captured.out  # the figure still rendered
    assert "failed point(s)" in captured.err
    assert "RetryLimitError" in captured.err


def test_figure_deadline_flag_converts_hang_into_point_failure(
        capsys, monkeypatch):
    """--deadline-s bounds every point: a hung simulation surfaces as a
    DeadlineExpiredError point failure, not a stuck process."""
    import time as time_module

    import repro.exec.backend as backend_module
    from repro.cli import EXIT_POINT_FAILURES

    real_simulate = backend_module.simulate

    def hanging(app, machine_name, config, **kwargs):
        if machine_name == "logp":
            time_module.sleep(60)
        return real_simulate(app, machine_name, config, **kwargs)

    monkeypatch.setattr(backend_module, "simulate", hanging)
    code = main([
        "figure", "fig01", "--preset", "quick",
        "--deadline-s", "0.2", "--max-retries", "0",
    ])
    assert code == EXIT_POINT_FAILURES
    assert "DeadlineExpiredError" in capsys.readouterr().err


def test_cache_verify_healthy_store_exits_clean(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    assert main(["figure", "fig03", "--preset", "quick",
                 "--cache-dir", cache]) == 0
    capsys.readouterr()
    assert main(["cache", "verify", "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "result store verify" in out and "0 corrupt" in out


def test_cache_verify_and_repair_corruption(capsys, tmp_path):
    from repro.exec import ResultStore

    cache = tmp_path / "cache"
    assert main(["figure", "fig03", "--preset", "quick",
                 "--cache-dir", str(cache)]) == 0
    cold_out = capsys.readouterr().out
    # Silent bit rot: a result value changed, checksum now stale, but
    # the embedded spec intact -- exactly the repairable case.
    import json

    entry = ResultStore(cache).entry_paths()[0]
    payload = json.loads(entry.read_text())
    payload["result"]["total_ns"] = 1
    entry.write_text(json.dumps(payload))

    # Verify alone: corruption found and quarantined, non-zero exit.
    assert main(["cache", "verify", "--cache-dir", str(cache)]) == 1
    captured = capsys.readouterr()
    assert "1 corrupt" in captured.out
    assert "--repair" in captured.err

    # Repair: the missing point is re-simulated and the store healthy.
    assert main(["cache", "verify", "--cache-dir", str(cache),
                 "--repair"]) == 0
    assert "1 repaired" in capsys.readouterr().out
    assert main(["cache", "verify", "--cache-dir", str(cache)]) == 0
    capsys.readouterr()

    # The repaired store serves the figure identically.
    assert main(["figure", "fig03", "--preset", "quick",
                 "--cache-dir", str(cache)]) == 0
    assert capsys.readouterr().out == cold_out


def test_cache_verify_requires_a_directory(monkeypatch):
    from repro.errors import ConfigError

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    with pytest.raises(ConfigError, match="--cache-dir"):
        main(["cache", "verify"])


def test_cache_verify_reads_env_var(capsys, tmp_path, monkeypatch):
    cache = tmp_path / "cache"
    assert main(["figure", "fig03", "--preset", "quick",
                 "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
    assert main(["cache", "verify"]) == 0
