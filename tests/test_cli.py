"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fft" in out and "target" in out and "fig01" in out


def test_params(capsys):
    assert main(["params", "--topology", "mesh", "-p", "32"]) == 0
    out = capsys.readouterr().out
    assert "L = 1.60 us" in out
    assert "g = 6.40 us" in out  # 0.8 * 8 columns


def test_params_full(capsys):
    assert main(["params", "--topology", "full", "-p", "8"]) == 0
    out = capsys.readouterr().out
    assert "g = 0.40 us" in out  # 3.2/8


def test_run(capsys):
    code = main([
        "run", "--app", "fft", "--machine", "clogp", "--topology", "cube",
        "-p", "2", "--preset", "quick",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fft" in out and "clogp" in out
    assert "cpu0" in out and "cpu1" in out


def test_figure(capsys):
    code = main(["figure", "fig03", "--preset", "quick"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig03" in out and "EP on full" in out


def test_unknown_figure_raises():
    with pytest.raises(KeyError):
        main(["figure", "fig99", "--preset", "quick"])


def test_parser_rejects_bad_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--app", "nosuch"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_scalability(capsys):
    code = main([
        "scalability", "--app", "fft", "--machine", "clogp",
        "--sweep", "1,4", "--preset", "quick",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup" in out and "fft" in out


def test_profile(capsys):
    code = main([
        "profile", "--app", "is", "-p", "2", "--preset", "quick",
        "--machine", "ideal",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "pid" in out and "compute_us" in out


def test_trace_record_and_replay(capsys, tmp_path):
    path = str(tmp_path / "t.json")
    code = main([
        "trace", "record", "--app", "fft", "-p", "2", "--out", path,
        "--preset", "quick",
    ])
    assert code == 0
    code = main(["trace", "replay", path, "--machine", "clogp"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fft@trace" in out


def test_trace_replay_warns_cross_machine(capsys, tmp_path):
    path = str(tmp_path / "t.json")
    main([
        "trace", "record", "--app", "is", "-p", "2", "--out", path,
        "--preset", "quick", "--machine", "clogp",
    ])
    main(["trace", "replay", path, "--machine", "logp"])
    out = capsys.readouterr().out
    assert "trace-driven approximation" in out
