"""Topologies: structure, routing, bisection (incl. property tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, TopologyError
from repro.network import FullyConnected, Hypercube, Mesh2D, make_topology
from repro.network.mesh import mesh_shape
from repro.network.topology import topology_names

POWERS = [1, 2, 4, 8, 16, 32, 64]

sizes = st.sampled_from([p for p in POWERS if p > 1])
topo_names = st.sampled_from(["full", "cube", "mesh"])


# -- registry -------------------------------------------------------------------


def test_registry_contents():
    assert topology_names() == ["cube", "full", "mesh"]


def test_unknown_topology_raises():
    with pytest.raises(ConfigError):
        make_topology("ring", 8)


@pytest.mark.parametrize("bad", [0, 3, 6, -8])
def test_non_power_of_two_rejected(bad):
    with pytest.raises(TopologyError):
        make_topology("full", bad)


# -- fully connected ---------------------------------------------------------------


def test_full_link_count():
    topo = FullyConnected(8)
    assert len(topo.links()) == 8 * 7  # ordered pairs


def test_full_single_hop_routes():
    topo = FullyConnected(8)
    assert topo.route(2, 5) == [(2, 5)]
    assert topo.route(3, 3) == []
    assert topo.diameter() == 1


def test_full_bisection():
    # (p/2)^2 one-way crossing links.
    assert FullyConnected(8).bisection_links() == 16
    assert FullyConnected(32).bisection_links() == 256


def test_full_neighbors():
    assert FullyConnected(4).neighbors(1) == [0, 2, 3]


# -- hypercube -------------------------------------------------------------------------


def test_cube_dimensions():
    assert Hypercube(16).dimensions == 4
    assert Hypercube(1).dimensions == 0


def test_cube_link_count():
    # p nodes x log2(p) neighbors, one link per direction.
    assert len(Hypercube(16).links()) == 16 * 4


def test_cube_neighbors_differ_in_one_bit():
    topo = Hypercube(16)
    for neighbor in topo.neighbors(5):
        assert bin(5 ^ neighbor).count("1") == 1


def test_cube_ecube_route_is_dimension_ordered():
    topo = Hypercube(16)
    path = topo.route(0b0000, 0b1011)
    assert path == [(0b0000, 0b0001), (0b0001, 0b0011), (0b0011, 0b1011)]


def test_cube_route_length_is_hamming_distance():
    topo = Hypercube(32)
    assert topo.hops(0, 31) == 5
    assert topo.hops(7, 7) == 0


def test_cube_bisection():
    assert Hypercube(16).bisection_links() == 8


def test_cube_diameter():
    assert Hypercube(32).diameter() == 5


# -- mesh -------------------------------------------------------------------------------


@pytest.mark.parametrize(
    "nprocs,shape",
    [(1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (8, (2, 4)), (16, (4, 4)),
     (32, (4, 8)), (64, (8, 8))],
)
def test_mesh_shape_rule(nprocs, shape):
    # Paper: square for even powers of two, cols = 2x rows otherwise.
    assert mesh_shape(nprocs) == shape


def test_mesh_coordinates_roundtrip():
    topo = Mesh2D(32)
    for node in range(32):
        row, col = topo.coordinates(node)
        assert topo.node_at(row, col) == node


def test_mesh_corner_and_interior_neighbors():
    topo = Mesh2D(16)  # 4x4
    assert len(topo.neighbors(0)) == 2  # corner
    assert len(topo.neighbors(1)) == 3  # edge
    assert len(topo.neighbors(5)) == 4  # interior


def test_mesh_xy_routing_goes_column_first():
    topo = Mesh2D(16)  # 4x4
    path = topo.route(topo.node_at(0, 0), topo.node_at(2, 3))
    # First all column moves along row 0, then row moves along col 3.
    assert path[:3] == [(0, 1), (1, 2), (2, 3)]
    assert path[3:] == [(3, 7), (7, 11)]


def test_mesh_bisection():
    assert Mesh2D(16).bisection_links() == 4  # 4 rows
    assert Mesh2D(32).bisection_links() == 4  # 4x8: 4 rows cross the cut
    assert Mesh2D(1).bisection_links() == 0


def test_mesh_diameter():
    assert Mesh2D(32).diameter() == (4 - 1) + (8 - 1)


def test_mesh_links_are_between_adjacent_nodes():
    topo = Mesh2D(8)
    for src, dst in topo.links():
        r1, c1 = topo.coordinates(src)
        r2, c2 = topo.coordinates(dst)
        assert abs(r1 - r2) + abs(c1 - c2) == 1


# -- shared properties (hypothesis) ------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(name=topo_names, nprocs=sizes, data=st.data())
def test_route_is_a_valid_walk(name, nprocs, data):
    topo = make_topology(name, nprocs)
    src = data.draw(st.integers(0, nprocs - 1))
    dst = data.draw(st.integers(0, nprocs - 1))
    links = set(topo.links())
    path = topo.route(src, dst)
    position = src
    for hop_src, hop_dst in path:
        assert hop_src == position
        assert (hop_src, hop_dst) in links
        position = hop_dst
    assert position == dst


@settings(max_examples=60, deadline=None)
@given(name=topo_names, nprocs=sizes, data=st.data())
def test_route_within_diameter(name, nprocs, data):
    topo = make_topology(name, nprocs)
    src = data.draw(st.integers(0, nprocs - 1))
    dst = data.draw(st.integers(0, nprocs - 1))
    assert len(topo.route(src, dst)) <= topo.diameter()


@settings(max_examples=30, deadline=None)
@given(name=topo_names, nprocs=sizes)
def test_links_are_symmetric_pairs(name, nprocs):
    topo = make_topology(name, nprocs)
    links = set(topo.links())
    assert all((dst, src) in links for src, dst in links)
    assert len(links) == len(topo.links())  # no duplicates


@settings(max_examples=30, deadline=None)
@given(name=topo_names, nprocs=sizes, data=st.data())
def test_route_to_self_is_empty(name, nprocs, data):
    topo = make_topology(name, nprocs)
    node = data.draw(st.integers(0, nprocs - 1))
    assert topo.route(node, node) == []


@settings(max_examples=40, deadline=None)
@given(name=topo_names, nprocs=sizes, data=st.data())
def test_dimension_order_acquisition_is_acyclic(name, nprocs, data):
    """Deadlock freedom: link-order dependencies must form a DAG.

    For each route, a message holds earlier links while requesting later
    ones; if a global order on links exists in which every route is
    increasing, circular waits are impossible.  Dimension-ordered
    routing guarantees such an order for the cube and mesh (and
    trivially for the single-hop full network).
    """
    topo = make_topology(name, nprocs)
    ordering = {link: i for i, link in enumerate(sorted(topo.links()))}

    def rank(link):
        src, dst = link
        if name == "cube":
            dim = (src ^ dst).bit_length()
            return (dim, ordering[link])
        if name == "mesh":
            mesh = topo
            r1, c1 = mesh.coordinates(src)
            r2, c2 = mesh.coordinates(dst)
            phase = 0 if r1 == r2 else 1  # X moves strictly before Y
            return (phase, ordering[link])
        return (0, ordering[link])

    src = data.draw(st.integers(0, nprocs - 1))
    dst = data.draw(st.integers(0, nprocs - 1))
    path = topo.route(src, dst)
    if name == "full":
        assert len(path) <= 1
        return
    ranks = [rank(link)[0] for link in path]
    assert ranks == sorted(ranks)


def test_node_bounds_checked():
    topo = make_topology("mesh", 8)
    with pytest.raises(TopologyError):
        topo.route(0, 8)
    with pytest.raises(TopologyError):
        topo.neighbors(-1)
