"""SoA kernel semantics: parity with the object kernel, row recycling,
guarded runs, and the selection rules.

The whole kernel tier rests on one invariant: both kernels execute the
*same event sequence*, so flipping ``REPRO_ENGINE`` (or the config
knob) changes host time only, never results.  These tests pin that
parity on engine-level scenarios and on full simulations, plus the SoA
internals the object kernel does not have: the row table growing past
its preallocation, free-list recycling, and the packed-word ring.
"""

from __future__ import annotations

import pytest

from repro.core.accounting import RunResult
from repro.core.runner import simulate_spec
from repro.engine import make_simulator, resolve_kernel
from repro.engine.compiled import HAVE_EXTENSION, CompiledSimulator
from repro.engine.core import TURN, Simulator
from repro.engine.resource import Resource
from repro.engine.soa import SoaSimulator
from repro.errors import SimulationError, WatchdogError
from repro.runspec import RunSpec
from repro.service.stats import ServiceStats


# -- scenario parity ----------------------------------------------------------


def _mixed_scenario(sim):
    """Sleeps, zero-delay yields, resource contention, events, TURN
    grants, and timeouts -- one generator workload exercising every
    yield form; returns the observed (tag, label, now) log."""
    log = []
    lock = Resource(sim, capacity=1, name="lock")
    ready = sim.event()

    def worker(tag, delay):
        log.append((tag, "start", sim.now))
        yield delay
        yield 0
        log.append((tag, "awake", sim.now))
        yield TURN if lock.try_acquire() else lock.request()
        log.append((tag, "locked", sim.now))
        yield 5
        lock.release()
        got = yield sim.timeout(3, value=tag)
        log.append((tag, "timeout", sim.now, got))
        if not ready.triggered:
            ready.succeed(tag)
        else:
            yield ready
        log.append((tag, "done", sim.now))

    for tag, delay in (("a", 2), ("b", 2), ("c", 7)):
        sim.spawn(worker(tag, delay), name=tag)
    sim.run()
    return log


def test_soa_matches_object_kernel_on_mixed_scenario():
    obj_log = _mixed_scenario(Simulator())
    soa_log = _mixed_scenario(SoaSimulator())
    assert soa_log == obj_log
    assert len(soa_log) == 15


def test_soa_matches_object_kernel_on_simulation(quick_spec):
    results = {}
    for kernel in ("object", "soa"):
        # check="off": hook-installing sanitizer levels (e.g. a
        # REPRO_CHECK=strict suite run) would force the object kernel
        # for both sides, making the parity assertion vacuous.
        spec = quick_spec(engine_kernel=kernel, check="off")
        results[kernel] = simulate_spec(spec)
    obj, soa = results["object"], results["soa"]
    assert (soa.total_ns, soa.messages, soa.sim_events, soa.buckets) == (
        obj.total_ns, obj.messages, obj.sim_events, obj.buckets
    )
    assert obj.engine["kernel"] == "object"
    assert soa.engine["kernel"] == "soa"


# -- guarded runs: until / until_ns / max_events ------------------------------


def _sleeper_pair(sim):
    def sleeper(period):
        while True:
            yield period
    sim.spawn(sleeper(10), name="slow")
    sim.spawn(sleeper(4), name="fast")


def test_soa_until_advances_clock_past_drained_ring():
    sim = SoaSimulator()

    def short_lived():
        yield 3
        yield 0  # ring word at t=3, then the queues drain

    sim.spawn(short_lived())
    sim.run(until=50)
    # The horizon is honoured even though everything drained at t=3.
    assert sim.now == 50


def test_soa_until_ns_is_an_alias_and_exclusive():
    sim = SoaSimulator()
    _sleeper_pair(sim)
    sim.run(until_ns=21)
    assert sim.now == 21
    with pytest.raises(SimulationError):
        sim.run(until=5, until_ns=5)


def test_soa_max_events_budget():
    sim = SoaSimulator()
    _sleeper_pair(sim)
    with pytest.raises(WatchdogError):
        sim.run(max_events=7)
    assert sim.events_executed == 7
    with pytest.raises(SimulationError):
        sim.run(max_events=0)


def test_guarded_run_parity_with_object_kernel():
    outcomes = []
    for cls in (Simulator, SoaSimulator):
        sim = cls()
        _sleeper_pair(sim)
        executed = sim.run(until=37)
        outcomes.append((executed, sim.now, sim.events_executed))
    assert outcomes[0] == outcomes[1]


# -- pooled timeouts under SoA ------------------------------------------------


def test_soa_recycles_pooled_timeouts():
    sim = SoaSimulator()
    seen = []

    def ticker():
        for n in range(6):
            value = yield sim.timeout(5, value=n)
            seen.append(value)

    sim.spawn(ticker())
    sim.run()
    assert seen == list(range(6))
    profile = sim.engine_profile()
    assert profile["timeouts_issued"] == 6
    # The expired timeout returns to the pool *after* its waiter
    # resumes, so the waiter's immediate re-arm allocates once more;
    # from the third tick on, every timeout comes from the pool.
    assert profile["timeouts_pooled"] == 4
    assert len(sim._timeout_pool) == 2


# -- row table growth and recycling -------------------------------------------


def test_row_table_grows_across_preallocation_boundary():
    sim = SoaSimulator(row_capacity=8)
    assert sim._cap == 8
    hits = []

    def sleeper(pid):
        yield pid + 1
        yield 40 - pid
        hits.append(pid)

    for pid in range(30):  # 30 concurrent heap rows >> 8 preallocated
        sim.spawn(sleeper(pid), name=f"s{pid}")
    sim.run()
    assert sorted(hits) == list(range(30))
    profile = sim.engine_profile()
    assert profile["compactions"] >= 1
    assert profile["row_capacity"] >= 30
    assert profile["rows_live"] == 0


def test_free_list_recycles_rows():
    sim = SoaSimulator()

    def chatter():
        other = sim.event()
        done = []

        def listener():
            done.append((yield other))

        sim.spawn(listener(), name="listener")
        yield 2
        other.succeed("ping")
        yield 1
        assert done == ["ping"]

    sim.spawn(chatter(), name="chatter")
    sim.run()
    profile = sim.engine_profile()
    assert profile["kernel"] == "soa"
    assert profile["rows_recycled"] >= 1
    assert profile["heap_pops"] + profile["ring_pops"] == sim.events_executed


# -- kernel selection ---------------------------------------------------------


def test_env_var_forces_object_fallback(monkeypatch, quick_spec):
    monkeypatch.setenv("REPRO_ENGINE", "object")
    assert resolve_kernel("auto") == "object"
    assert type(make_simulator()) is Simulator
    result = simulate_spec(quick_spec())
    assert result.engine["kernel"] == "object"


def test_auto_prefers_compiled_else_soa(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    if HAVE_EXTENSION:
        assert resolve_kernel("auto") == "compiled"
        assert type(make_simulator()) is CompiledSimulator
    else:
        assert resolve_kernel("auto") == "soa"
        assert type(make_simulator()) is SoaSimulator


def test_explicit_knob_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "object")
    assert type(make_simulator(kernel="soa")) is SoaSimulator


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError):
        resolve_kernel("vectorized")


def test_digest_forces_object_kernel(monkeypatch, quick_spec):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    result = simulate_spec(quick_spec(digest=True))
    assert result.engine["kernel"] == "object"
    assert result.check_report is not None


def test_soa_refuses_engine_hooks():
    from repro.checkers.base import Checker

    class Hooked(Checker):
        name = "hooked"

        def on_event(self, at, seq, action):
            pass

    with pytest.raises(SimulationError):
        SoaSimulator(checkers=(Hooked(),))
    # The factory routes the same request to the object kernel instead.
    assert type(make_simulator(checkers=(Hooked(),))) is Simulator


# -- profile and result metadata ----------------------------------------------


def test_engine_profile_keys():
    sim = SoaSimulator()
    _sleeper_pair(sim)
    sim.run(until=30)
    profile = sim.engine_profile()
    for key in ("kernel", "events_executed", "heap_pops", "ring_pops",
                "rows_recycled", "compactions", "flat_posts",
                "row_capacity", "rows_live"):
        assert key in profile, key
    assert profile["kernel"] == "soa"
    assert profile["instrumented"] == 0


def test_run_result_engine_roundtrip(quick_spec):
    result = simulate_spec(quick_spec(engine_kernel="soa", check="off"))
    assert result.engine is not None
    assert result.engine["heap_pops"] + result.engine["ring_pops"] == (
        result.sim_events
    )
    restored = RunResult.from_dict(result.to_dict())
    assert restored.engine == result.engine


def test_run_result_tolerates_legacy_dicts(quick_spec):
    # Results persisted before the kernel tier have no "engine" key.
    legacy = simulate_spec(quick_spec()).to_dict()
    del legacy["engine"]
    assert RunResult.from_dict(legacy).engine is None


def test_service_stats_note_engine(quick_spec):
    stats = ServiceStats()
    assert stats.snapshot()["engine"] is None
    result = simulate_spec(quick_spec(engine_kernel="soa", check="off"))
    stats.note_engine(result)
    snap = stats.snapshot()["engine"]
    assert snap["kernel"] == "soa"
    assert snap["events_per_sec"] is None or snap["events_per_sec"] > 0
    # Legacy results without engine metadata leave the snapshot alone.
    bare = simulate_spec(quick_spec())
    bare.engine = None
    stats.note_engine(bare)
    assert stats.snapshot()["engine"] == snap


# -- fixtures -----------------------------------------------------------------


@pytest.fixture
def quick_spec():
    """Factory for a small deterministic jacobi spec."""
    def build(**overrides):
        kwargs = dict(preset="quick", seed=7)
        kwargs.update(overrides)
        return RunSpec.build("jacobi", "target", 4, "mesh", **kwargs)
    return build
