"""The discrete-event engine: events, processes, clock, determinism."""

import pytest

from repro.engine import Simulator, all_of
from repro.errors import DeadlockError, SimulationError


def test_clock_starts_at_zero():
    assert Simulator().now == 0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)
        yield sim.timeout(50)

    sim.spawn(proc())
    assert sim.run() == 150


def test_zero_timeout_is_legal():
    sim = Simulator()

    def proc():
        yield sim.timeout(0)

    sim.spawn(proc())
    assert sim.run() == 0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_process_return_value_becomes_event_value():
    sim = Simulator()

    def child():
        yield sim.timeout(5)
        return 42

    def parent():
        value = yield sim.spawn(child())
        assert value == 42
        return value * 2

    parent_proc = sim.spawn(parent())
    sim.run()
    assert parent_proc.value == 84


def test_yield_from_delegation():
    sim = Simulator()
    trace = []

    def inner():
        yield sim.timeout(10)
        trace.append(("inner", sim.now))
        return "inner-result"

    def outer():
        result = yield from inner()
        trace.append(("outer", sim.now, result))

    sim.spawn(outer())
    sim.run()
    assert trace == [("inner", 10), ("outer", 10, "inner-result")]


def test_event_succeed_wakes_waiters_with_value():
    sim = Simulator()
    event = sim.event()
    seen = []

    def waiter(tag):
        value = yield event
        seen.append((tag, value, sim.now))

    def setter():
        yield sim.timeout(30)
        event.succeed("payload")

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.spawn(setter())
    sim.run()
    assert seen == [("a", "payload", 30), ("b", "payload", 30)]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_waiting_on_already_triggered_event():
    sim = Simulator()
    event = sim.event()
    event.succeed("early")

    def proc():
        value = yield event
        return value

    p = sim.spawn(proc())
    sim.run()
    assert p.value == "early"


def test_event_fail_throws_into_process():
    sim = Simulator()
    event = sim.event()

    def setter():
        yield sim.timeout(1)
        event.fail(ValueError("boom"))

    caught = []

    def waiter():
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    sim.spawn(setter())
    sim.run()
    assert caught == ["boom"]


def test_process_exception_fails_fast_by_default():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("kaput")

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_exception_propagates_to_joiner_when_not_fail_fast():
    sim = Simulator(fail_fast=False)

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("kaput")

    caught = []

    def joiner():
        try:
            yield sim.spawn(bad())
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(joiner())
    sim.run()
    assert caught == ["kaput"]


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield "not an event"

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_yielding_negative_delay_is_an_error():
    sim = Simulator()

    def bad():
        yield -5

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_deadlock_detection():
    sim = Simulator()
    event = sim.event()  # nobody will ever trigger it

    def stuck():
        yield event

    sim.spawn(stuck())
    with pytest.raises(DeadlockError) as excinfo:
        sim.run()
    assert excinfo.value.blocked == 1


def test_run_until_horizon():
    sim = Simulator()

    def proc():
        yield sim.timeout(1_000)

    sim.spawn(proc())
    assert sim.run(until=300) == 300
    # Remaining events still runnable afterwards.
    assert sim.run() == 1_000


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(10)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_determinism_across_runs():
    def build():
        sim = Simulator()
        log = []

        def worker(tag, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                log.append((tag, sim.now))

        sim.spawn(worker("x", 7))
        sim.spawn(worker("y", 5))
        sim.run()
        return log

    assert build() == build()


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def child(delay, value):
        yield sim.timeout(delay)
        return value

    def parent():
        procs = [sim.spawn(child(d, d * 10)) for d in (5, 1, 9)]
        values = yield all_of(sim, procs)
        assert sim.now == 9
        return values

    p = sim.spawn(parent())
    sim.run()
    assert p.value == [50, 10, 90]


def test_all_of_empty_list():
    sim = Simulator()

    def parent():
        values = yield all_of(sim, [])
        return values

    p = sim.spawn(parent())
    sim.run()
    assert p.value == []


def test_events_executed_counter_increases():
    sim = Simulator()

    def proc():
        for _ in range(10):
            yield sim.timeout(1)

    sim.spawn(proc())
    sim.run()
    assert sim.events_executed >= 10
