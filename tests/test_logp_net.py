"""The LogP network model: L delays and g-gap gating."""

from repro.core.logp_net import LogPNetwork
from repro.core.params import LogPParams
from repro.engine import Simulator


def make_net(g=1_000, L=1_600, per_event_type=False, nprocs=4):
    sim = Simulator()
    params = LogPParams(L_ns=L, g_ns=g, o_ns=0, P=nprocs)
    return sim, LogPNetwork(sim, params, per_event_type=per_event_type)


def test_single_message_takes_L():
    sim, net = make_net()
    trip = net.one_way(0, 1)
    assert trip.total_ns == 1_600
    assert trip.latency_ns == 1_600
    assert trip.stall_ns == 0
    assert trip.messages == 1


def test_round_trip_is_2L_plus_service():
    sim, net = make_net(g=0)
    trip = net.round_trip(0, 1, service_ns=300)
    assert trip.total_ns == 2 * 1_600 + 300
    assert trip.latency_ns == 3_200
    assert trip.service_ns == 300
    assert trip.messages == 2


def test_sender_gap_stalls_second_send():
    sim, net = make_net(g=2_000)
    first = net.one_way(0, 1)
    second = net.one_way(0, 2)
    assert first.stall_ns == 0
    # Second send waits until g after the first.
    assert second.stall_ns == 2_000
    assert second.total_ns == 2_000 + 1_600


def test_receiver_gap_stalls_back_to_back_arrivals():
    sim, net = make_net(g=2_000)
    net.one_way(0, 3)
    trip = net.one_way(1, 3)
    # Arrives at 1600 but node 3's gate is busy until 2000... wait:
    # receive gate opened at 1600 + g.  Second arrival at 1600 must wait
    # until 3600.
    assert trip.stall_ns == 2_000
    assert trip.total_ns == 1_600 + 2_000


def test_strict_gating_couples_sends_and_receives():
    """The paper's complaint: a node cannot overlap a send with a receive."""
    sim, net = make_net(g=2_000, per_event_type=False)
    net.one_way(0, 1)  # node 0 sends at t=0
    trip = net.one_way(2, 0)  # message into node 0
    # Node 0's single gate is closed until 2000; arrival at 1600 stalls.
    assert trip.stall_ns == 400


def test_per_event_type_gating_decouples_them():
    sim, net = make_net(g=2_000, per_event_type=True)
    net.one_way(0, 1)
    trip = net.one_way(2, 0)
    # Separate receive gate: no stall.
    assert trip.stall_ns == 0


def test_per_event_type_still_gates_same_kind():
    sim, net = make_net(g=2_000, per_event_type=True)
    net.one_way(0, 1)
    second = net.one_way(0, 2)
    assert second.stall_ns == 2_000


def test_zero_gap_never_stalls():
    sim, net = make_net(g=0)
    for _ in range(5):
        assert net.one_way(0, 1).stall_ns == 0


def test_gates_respect_simulated_time():
    sim, net = make_net(g=2_000)

    def proc():
        net.one_way(0, 1)
        yield sim.timeout(10_000)  # far beyond the gate
        trip = net.one_way(0, 2)
        assert trip.stall_ns == 0

    sim.spawn(proc())
    sim.run()


def test_instrumentation_counters():
    sim, net = make_net(g=2_000)
    net.round_trip(0, 1)
    assert net.messages == 2
    assert net.total_stall_ns >= 0


def test_round_trip_reply_gated_at_remote():
    sim, net = make_net(g=5_000)
    trip = net.round_trip(0, 1)
    # Remote receive at L=1600 reserves node 1's gate to 6600; the reply
    # send then stalls 5000.
    assert trip.stall_ns == 5_000
    assert trip.total_ns == 1_600 + 5_000 + 1_600


def test_o_parameter_adds_to_latency():
    sim = Simulator()
    params = LogPParams(L_ns=1_600, g_ns=0, o_ns=100, P=4)
    net = LogPNetwork(sim, params)
    trip = net.one_way(0, 1)
    assert trip.latency_ns == 1_800
    assert trip.total_ns == 1_800
