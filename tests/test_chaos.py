"""Chaos harness: deterministic host faults, end-to-end self-healing.

The end-to-end test here is the PR's acceptance criterion: a quick
figure sweep on a supervised pool completes bit-identical to an
undisturbed serial run while the harness SIGKILLs a worker, stalls one
point past its wall-clock deadline, and flips a byte in a committed
cache entry.
"""

import json

import pytest

import repro.chaos.harness as harness_module
from repro import RunSpec
from repro.chaos import ChaosMonkey, ChaosPlan, run_chaos_sweep
from repro.chaos.harness import _maybe_stall
from repro.exec import ResultStore
from repro.exec.store import QUARANTINE_SUFFIX


def quick_spec(**overrides) -> RunSpec:
    kwargs = dict(app="fft", machine="clogp", nprocs=2, preset="quick")
    kwargs.update(overrides)
    return RunSpec.build(**kwargs)


# -- injection seams -----------------------------------------------------------------


def test_stall_fires_once_per_worker_and_only_on_first_attempt(monkeypatch):
    naps = []
    monkeypatch.setattr(harness_module.time, "sleep", naps.append)
    monkeypatch.setattr(harness_module, "_STALLED", set())
    spec = quick_spec()
    plan = ChaosPlan(stall_digest=spec.spec_digest(), stall_s=7.0)

    _maybe_stall(plan, quick_spec(seed=999), attempt=1)  # different spec
    assert naps == []
    _maybe_stall(plan, spec, attempt=2)  # retry, not first attempt
    assert naps == []
    _maybe_stall(plan, spec, attempt=1)  # the planned stall
    assert naps == [7.0]
    _maybe_stall(plan, spec, attempt=1)  # resubmitted to the same worker
    assert naps == [7.0]


def test_monkey_corrupts_a_committed_entry(tmp_path):
    from repro.core.runner import simulate_spec

    store = ResultStore(tmp_path)
    spec = quick_spec()
    store.put(spec, simulate_spec(spec))
    monkey = ChaosMonkey(ChaosPlan(corrupt_at=(1,)), store_root=tmp_path)
    target = monkey.corrupt_entry()
    assert target is not None and monkey.corruptions == 1
    # The flipped byte must trip the content checksum on the next read.
    fresh = ResultStore(tmp_path)
    assert fresh.get(spec) is None
    assert fresh.quarantined == 1
    assert target.with_name(target.name + QUARANTINE_SUFFIX).exists()


def test_monkey_ignores_an_empty_store(tmp_path):
    monkey = ChaosMonkey(ChaosPlan(), store_root=tmp_path / "nothing")
    assert monkey.corrupt_entry() is None
    assert monkey.corruptions == 0


def test_plan_is_picklable():
    import pickle

    plan = ChaosPlan(kill_at=(2,), corrupt_at=(4,), stall_digest="ab" * 32)
    assert pickle.loads(pickle.dumps(plan)) == plan


# -- the acceptance criterion --------------------------------------------------------


def test_chaos_sweep_completes_bit_identical(tmp_path):
    """Worker SIGKILL + deadline stall + cache byte flip, one sweep:
    results and determinism digests must match serial exactly."""
    report = run_chaos_sweep(
        experiment_id="fig01",
        preset="quick",
        processors=(1, 4),
        jobs=2,
        cache_dir=tmp_path,
        deadline_s=2.0,
        stall_s=60.0,
        max_retries=2,
    )
    assert report.kills == 1
    assert report.corruptions == 1
    assert report.stalled
    assert report.rebuilds >= 1
    assert report.quarantined >= 1
    assert report.failures == 0
    assert report.identical and report.warm_identical
    assert report.passed
    summary = report.summary()
    assert "PASS" in summary and "bit-identical" in summary


def test_chaos_sweep_requires_a_cache_dir():
    with pytest.raises(ValueError, match="cache_dir"):
        run_chaos_sweep(cache_dir=None)


def test_report_fails_on_divergence_or_point_failures():
    kwargs = dict(
        experiment_id="fig01", identical=True, warm_identical=True,
        kills=1, corruptions=1, stalled=True, rebuilds=1, degraded=False,
        quarantined=1, failures=0, chaos_wall_s=1.0, serial_wall_s=1.0,
    )
    from repro.chaos import ChaosReport

    assert ChaosReport(**kwargs).passed
    assert not ChaosReport(**{**kwargs, "identical": False}).passed
    assert not ChaosReport(**{**kwargs, "warm_identical": False}).passed
    failed = ChaosReport(**{**kwargs, "failures": 2})
    assert not failed.passed
    assert "FAIL" in failed.summary()


def test_corrupted_entry_json_fails_checksum(tmp_path):
    """The byte flip lands inside the JSON payload: either it breaks
    parsing outright or the content checksum catches it -- both read as
    'corrupt', never as a silently different result."""
    from repro.core.runner import simulate_spec
    from repro.exec.store import entry_checksum

    store = ResultStore(tmp_path)
    spec = quick_spec()
    store.put(spec, simulate_spec(spec))
    monkey = ChaosMonkey(ChaosPlan(), store_root=tmp_path)
    target = monkey.corrupt_entry()
    try:
        payload = json.loads(target.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError):
        return  # unreadable: quarantined on read, nothing more to check
    assert payload.get("checksum") != entry_checksum(payload)
