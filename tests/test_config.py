"""SystemConfig validation and derived quantities."""

import pytest

from repro import ConfigError, SystemConfig, paper_config
from repro.config import MACHINES, PAPER_CONFIG, TOPOLOGIES


def test_defaults_match_paper_hardware():
    config = SystemConfig()
    assert config.cpu_cycle_ns == 30  # 33 MHz SPARC
    assert config.link_ns_per_byte == 50  # 20 MB/s serial links
    assert config.data_message_bytes == 32
    assert config.cache_size_bytes == 64 * 1024
    assert config.cache_assoc == 2
    assert config.block_bytes == 32


def test_data_message_ns_is_paper_L():
    assert SystemConfig().data_message_ns == 1_600


def test_sets_for_paper_cache():
    # 64 KB / (32 B x 2 ways) = 1024 sets.
    assert SystemConfig().sets == 1_024


def test_cache_hit_and_memory_ns():
    config = SystemConfig()
    assert config.cache_hit_ns == 30
    assert config.memory_ns == 300


def test_control_message_ns():
    assert SystemConfig().control_message_ns == 400


def test_cycles_helper():
    assert SystemConfig().cycles(5) == 150


@pytest.mark.parametrize("processors", [3, 0, -4, 6, 12, 100])
def test_rejects_non_power_of_two_processors(processors):
    with pytest.raises(ConfigError):
        SystemConfig(processors=processors)


@pytest.mark.parametrize("processors", [1, 2, 4, 8, 16, 32, 64])
def test_accepts_power_of_two_processors(processors):
    assert SystemConfig(processors=processors).processors == processors


def test_rejects_unknown_topology():
    with pytest.raises(ConfigError):
        SystemConfig(topology="torus")


def test_rejects_bad_block_size():
    with pytest.raises(ConfigError):
        SystemConfig(block_bytes=24)


def test_rejects_inconsistent_cache_geometry():
    with pytest.raises(ConfigError):
        SystemConfig(cache_size_bytes=1000, cache_assoc=3)


def test_rejects_nonpositive_times():
    with pytest.raises(ConfigError):
        SystemConfig(cpu_cycle_ns=0)
    with pytest.raises(ConfigError):
        SystemConfig(memory_cycles=-1)


def test_rejects_message_smaller_than_block():
    with pytest.raises(ConfigError):
        SystemConfig(data_message_bytes=16, block_bytes=32)


def test_with_replaces_fields():
    config = SystemConfig().with_(processors=16, topology="mesh")
    assert config.processors == 16
    assert config.topology == "mesh"
    # Original untouched (frozen dataclass).
    assert SystemConfig().processors == 8


def test_with_still_validates():
    with pytest.raises(ConfigError):
        SystemConfig().with_(processors=7)


def test_paper_config_helper():
    config = paper_config(32, "cube")
    assert config.processors == 32
    assert config.topology == "cube"


def test_registry_constants():
    assert set(TOPOLOGIES) == {"full", "cube", "mesh"}
    assert set(MACHINES) == {"target", "logp", "clogp", "ideal"}
    assert PAPER_CONFIG.processors == 8


def test_config_is_frozen():
    config = SystemConfig()
    with pytest.raises(Exception):
        config.processors = 16


def test_switch_delay_defaults_to_paper_assumption():
    assert SystemConfig().switch_delay_ns == 0
    assert SystemConfig(switch_delay_ns=250).switch_delay_ns == 250
