"""Scalability analysis helpers."""

import pytest

from repro import OverheadBuckets, RunResult, simulate
from repro.analysis import (
    abstraction_error,
    efficiency_curve,
    overhead_fractions,
    overhead_growth,
    processor_profile,
    profile_table,
    scalability_table,
    speedup_curve,
)
from repro.errors import ReproError

from tests.conftest import tiny_app, tiny_config


def synthetic(nprocs, total_us, latency_us=0.0):
    return RunResult(
        app="x",
        machine="m",
        topology="full",
        nprocs=nprocs,
        total_ns=int(total_us * 1_000),
        buckets=[
            OverheadBuckets(
                compute_ns=int(total_us * 500),
                latency_ns=int(latency_us * 1_000),
            )
            for _ in range(nprocs)
        ],
    )


def test_speedup_against_serial_base():
    sweep = [synthetic(1, 100.0), synthetic(2, 60.0), synthetic(4, 30.0)]
    curve = speedup_curve(sweep)
    assert curve == [(1, 1.0), (2, 100 / 60), (4, 100 / 30)]


def test_speedup_sorts_inputs():
    sweep = [synthetic(4, 30.0), synthetic(1, 100.0)]
    assert speedup_curve(sweep)[0][0] == 1


def test_efficiency():
    sweep = [synthetic(1, 100.0), synthetic(4, 25.0)]
    eff = dict(efficiency_curve(sweep))
    assert eff[1] == 1.0
    assert eff[4] == 1.0  # perfect linear speedup


def test_duplicate_processor_counts_rejected():
    with pytest.raises(ReproError):
        speedup_curve([synthetic(2, 10.0), synthetic(2, 12.0)])


def test_empty_sweep_rejected():
    with pytest.raises(ReproError):
        speedup_curve([])


def test_overhead_fractions_sum_to_one():
    result = synthetic(4, 100.0, latency_us=10.0)
    fractions = overhead_fractions(result)
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
    assert fractions["latency_ns"] > 0


def test_overhead_fractions_empty_run():
    result = RunResult(app="x", machine="m", topology="full", nprocs=0)
    assert all(v == 0.0 for v in overhead_fractions(result).values())


def test_overhead_growth():
    sweep = [synthetic(1, 100.0, latency_us=0.0),
             synthetic(4, 30.0, latency_us=8.0)]
    growth = overhead_growth(sweep, "latency_ns")
    assert growth == [(1, 0.0), (4, 8.0)]
    with pytest.raises(ReproError):
        overhead_growth(sweep, "turbo_ns")


def test_abstraction_error_zero_for_identical():
    sweep = [synthetic(1, 100.0), synthetic(4, 30.0)]
    assert abstraction_error(sweep, sweep) == 0.0


def test_abstraction_error_measures_gap():
    reference = [synthetic(1, 100.0), synthetic(4, 30.0)]
    model = [synthetic(1, 100.0), synthetic(4, 60.0)]
    assert abstraction_error(reference, model) == pytest.approx(0.5)


def test_abstraction_error_mismatched_sweeps():
    with pytest.raises(ReproError):
        abstraction_error([synthetic(1, 10.0)], [synthetic(2, 10.0)])


def test_scalability_table_renders():
    sweep = [synthetic(1, 100.0), synthetic(4, 30.0)]
    table = scalability_table(sweep)
    assert "speedup" in table
    assert "100.0" in table


def test_profile_helpers_on_real_run():
    result = simulate(tiny_app("fft", 4), "target", tiny_config(4))
    profile = processor_profile(result)
    assert len(profile) == 4
    assert all(row["total_us"] > 0 for row in profile)
    text = profile_table(result)
    assert "fft" in text and "pid" in text


def test_paper_claims_in_abstraction_error_terms():
    """CLogP approximates the target far better than LogP does."""
    sweeps = {}
    for machine in ("target", "clogp", "logp"):
        sweeps[machine] = [
            simulate(tiny_app("is", p), machine, tiny_config(p))
            for p in (1, 2, 4)
        ]
    clogp_error = abstraction_error(sweeps["target"], sweeps["clogp"])
    logp_error = abstraction_error(sweeps["target"], sweeps["logp"])
    assert clogp_error < logp_error
    assert clogp_error < 0.5
