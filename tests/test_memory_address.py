"""Shared address space: allocation, lookup, home policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError, ConfigError
from repro.memory import AddressSpace

BLOCK = 32


def make_space(nprocs=4):
    return AddressSpace(nprocs, BLOCK)


def test_alloc_returns_block_aligned_regions():
    space = make_space()
    a = space.alloc("a", 10, 8)
    b = space.alloc("b", 3, 4)
    assert a.base % BLOCK == 0
    assert b.base % BLOCK == 0
    assert b.base >= a.base + 10 * 8


def test_address_zero_is_never_allocated():
    space = make_space()
    array = space.alloc("a", 4, 8)
    assert array.addr(0) >= BLOCK


def test_addr_bounds_checked():
    space = make_space()
    array = space.alloc("a", 4, 8)
    array.addr(3)
    with pytest.raises(AddressError):
        array.addr(4)
    with pytest.raises(AddressError):
        array.addr(-1)


def test_addrs_helper():
    space = make_space()
    array = space.alloc("a", 8, 8)
    assert array.addrs([0, 2]) == (array.addr(0), array.addr(2))


def test_region_lookup():
    space = make_space()
    a = space.alloc("a", 16, 8)
    b = space.alloc("b", 16, 8)
    assert space.region_of(a.addr(5)).name == "a"
    assert space.region_of(b.addr(0)).name == "b"


def test_unallocated_address_raises():
    space = make_space()
    space.alloc("a", 4, 8)
    with pytest.raises(AddressError):
        space.region_of(0)  # below all regions
    with pytest.raises(AddressError):
        space.home_of(10_000_000)


def test_blocked_distribution_chunks():
    space = make_space(4)
    # 16 blocks of 4 elements each, blocked over 4 nodes -> 4 blocks per node.
    array = space.alloc("a", 64, 8, "blocked")
    homes = [space.home_of(array.addr(i)) for i in range(0, 64, 4)]
    assert homes == sorted(homes)
    assert set(homes) == {0, 1, 2, 3}
    assert homes.count(0) == 4


def test_blocked_alignment_gives_each_node_own_chunk():
    space = make_space(4)
    array = space.alloc("a", 4, 8, "blocked", align_blocks_per_proc=True)
    # Only one block of real data, but padding ensures element 0 is on
    # node 0 and the region spans a multiple of nprocs blocks.
    assert array.home(0) == 0
    assert array.region.nblocks % 4 == 0


def test_interleaved_distribution_round_robins_blocks():
    space = make_space(4)
    array = space.alloc("a", 64, 8, "interleaved")  # 16 blocks
    homes = [space.home_of_block(space.block_of(array.addr(i * 4)))
             for i in range(16)]
    assert homes == [i % 4 for i in range(16)]


def test_node_distribution_pins_home():
    space = make_space(4)
    array = space.alloc("a", 64, 8, ("node", 2))
    assert all(space.home_of(array.addr(i)) == 2 for i in range(0, 64, 7))


def test_bad_distribution_rejected():
    space = make_space(4)
    with pytest.raises(ConfigError):
        space.alloc("a", 4, 8, "striped")
    with pytest.raises(ConfigError):
        space.alloc("b", 4, 8, ("node", 4))


def test_bad_alloc_params_rejected():
    space = make_space()
    with pytest.raises(ConfigError):
        space.alloc("a", 0, 8)
    with pytest.raises(ConfigError):
        space.alloc("a", 8, 0)


def test_same_block_same_home():
    space = make_space(4)
    array = space.alloc("a", 64, 8, "interleaved")
    # Elements 0-3 share block 0: identical homes.
    homes = {space.home_of(array.addr(i)) for i in range(4)}
    assert len(homes) == 1


@settings(max_examples=50, deadline=None)
@given(
    nprocs=st.sampled_from([1, 2, 4, 8]),
    counts=st.lists(st.integers(1, 200), min_size=1, max_size=6),
    elem=st.sampled_from([4, 8, 32]),
    dist=st.sampled_from(["blocked", "interleaved"]),
)
def test_every_allocated_address_resolves(nprocs, counts, elem, dist):
    space = AddressSpace(nprocs, BLOCK)
    arrays = [
        space.alloc(f"r{i}", count, elem, dist)
        for i, count in enumerate(counts)
    ]
    for array in arrays:
        for index in (0, len(array) // 2, len(array) - 1):
            addr = array.addr(index)
            assert space.region_of(addr).name == array.name
            home = space.home_of(addr)
            assert 0 <= home < nprocs


@settings(max_examples=30, deadline=None)
@given(nprocs=st.sampled_from([2, 4, 8]), nblocks=st.integers(1, 64))
def test_blocked_homes_are_monotone(nprocs, nblocks):
    space = AddressSpace(nprocs, BLOCK)
    array = space.alloc("a", nblocks * BLOCK, 1, "blocked")
    homes = [space.home_of(array.addr(i * BLOCK)) for i in range(nblocks)]
    assert homes == sorted(homes)
    assert homes[0] == 0
