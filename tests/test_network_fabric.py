"""Circuit-switched fabric: transmission timing and contention split."""

import pytest

from repro.engine import Simulator
from repro.errors import TopologyError
from repro.network import Fabric, Message, make_topology

NS_PER_BYTE = 50


def make_fabric(name="full", nprocs=4):
    sim = Simulator()
    return sim, Fabric(sim, make_topology(name, nprocs), NS_PER_BYTE)


def run_transfers(sim, fabric, messages, starts=None):
    """Run transfers; return list of (start, end, TransferResult)."""
    out = [None] * len(messages)

    def proc(i, message, delay):
        if delay:
            yield sim.timeout(delay)
        begin = sim.now
        result = yield from fabric.transmit(message)
        out[i] = (begin, sim.now, result)

    starts = starts or [0] * len(messages)
    for i, (message, delay) in enumerate(zip(messages, starts)):
        sim.spawn(proc(i, message, delay))
    sim.run()
    return out


def test_uncontended_transfer_takes_transmission_time():
    sim, fabric = make_fabric()
    [(begin, end, result)] = run_transfers(sim, fabric, [Message(0, 1, 32)])
    assert end - begin == 32 * NS_PER_BYTE == 1_600
    assert result.latency_ns == 1_600
    assert result.contention_ns == 0


def test_control_message_is_faster():
    sim, fabric = make_fabric()
    [(begin, end, result)] = run_transfers(sim, fabric, [Message(0, 1, 8)])
    assert end - begin == 400
    assert result.latency_ns == 400


def test_local_message_is_free():
    sim, fabric = make_fabric()
    [(_, _, result)] = run_transfers(sim, fabric, [Message(2, 2, 32)])
    assert result.latency_ns == 0
    assert result.contention_ns == 0
    assert fabric.messages == 0  # never touched the network


def test_same_link_contention_is_measured():
    sim, fabric = make_fabric()
    results = run_transfers(
        sim, fabric,
        [Message(0, 1, 32), Message(0, 1, 32)],
    )
    # Second message queued behind the first on link (0,1).
    (b0, e0, r0), (b1, e1, r1) = results
    assert r0.contention_ns == 0
    assert r1.contention_ns == 1_600
    assert e1 == 3_200


def test_disjoint_links_do_not_contend():
    sim, fabric = make_fabric()
    results = run_transfers(
        sim, fabric,
        [Message(0, 1, 32), Message(2, 3, 32)],
    )
    for _, end, result in results:
        assert result.contention_ns == 0
        assert end == 1_600


def test_multihop_blocks_holding_upstream_links():
    sim, fabric = make_fabric("mesh", 4)  # 2x2 mesh
    # 0 -> 3 routes X-first through node 1: links (0,1), (1,3).  The
    # engine grants (1,3) to the single-hop message first, so the
    # multihop message stalls *holding* (0,1) -- wormhole head-of-line
    # blocking.
    results = run_transfers(
        sim, fabric,
        [Message(0, 3, 32), Message(1, 3, 32)],
    )
    (_, e0, r0), (_, e1, r1) = results
    assert r1.contention_ns == 0 and e1 == 1_600
    assert r0.contention_ns == 1_600 and e0 == 3_200


def test_multihop_queueing_behind_held_circuit():
    sim, fabric = make_fabric("mesh", 4)
    # Start the multihop circuit strictly first; the later single-hop
    # message then waits for the whole circuit to clear.
    results = run_transfers(
        sim, fabric,
        [Message(0, 3, 32), Message(1, 3, 32)],
        starts=[0, 100],
    )
    (_, e0, r0), (_, e1, r1) = results
    assert r0.contention_ns == 0 and e0 == 1_600
    assert r1.contention_ns == 1_500 and e1 == 3_200


def test_multihop_latency_is_hop_count_independent():
    # Circuit switching with negligible switch delay: transmission time
    # dominates, as the paper observes for all three networks.
    sim, fabric = make_fabric("mesh", 16)
    [(begin, end, result)] = run_transfers(sim, fabric, [Message(0, 15, 32)])
    assert result.latency_ns == 1_600
    assert end - begin == 1_600


def test_opposite_directions_are_independent_links():
    sim, fabric = make_fabric()
    results = run_transfers(
        sim, fabric,
        [Message(0, 1, 32), Message(1, 0, 32)],
    )
    for _, end, result in results:
        assert result.contention_ns == 0
        assert end == 1_600


def test_fabric_instrumentation():
    sim, fabric = make_fabric()
    run_transfers(sim, fabric, [Message(0, 1, 32), Message(0, 1, 8)])
    assert fabric.messages == 2
    assert fabric.bytes_transported == 40
    assert fabric.total_latency_ns == 2_000
    # The 8-byte message was scheduled second and waited out the
    # 32-byte transfer.
    assert fabric.total_contention_ns == 1_600


def test_link_busy_accounting():
    sim, fabric = make_fabric()
    run_transfers(sim, fabric, [Message(0, 1, 32)])
    link = fabric.link(0, 1)
    assert link.messages == 1
    assert link.bytes_carried == 32
    assert link.busy_ns == 1_600
    assert link.utilization(3_200) == 0.5


def test_missing_link_raises():
    sim, fabric = make_fabric("mesh", 4)
    with pytest.raises(TopologyError):
        fabric.link(0, 3)  # not adjacent in a 2x2 mesh


def test_post_runs_in_background():
    sim, fabric = make_fabric()
    fabric.post(Message(0, 1, 32, "wb"))
    sim.run()
    assert fabric.messages == 1
    assert sim.now == 1_600


def test_message_validation():
    with pytest.raises(ValueError):
        Message(0, 1, 0)
    with pytest.raises(ValueError):
        Message(-1, 1, 8)


def test_busiest_links():
    sim, fabric = make_fabric()
    run_transfers(sim, fabric, [Message(0, 1, 32), Message(0, 2, 8)])
    busiest = fabric.busiest_links(1)
    assert busiest[0].src == 0 and busiest[0].dst == 1


def test_switch_delay_adds_per_hop_latency():
    sim = Simulator()
    fabric = Fabric(sim, make_topology("mesh", 16), NS_PER_BYTE,
                    switch_delay_ns=100)
    [(begin, end, result)] = run_transfers(sim, fabric, [Message(0, 15, 32)])
    # 0 -> 15 in a 4x4 mesh: 6 hops.
    assert result.latency_ns == 1_600 + 6 * 100
    assert end - begin == result.latency_ns
    assert result.contention_ns == 0


def test_zero_switch_delay_matches_paper_assumption():
    sim = Simulator()
    fabric = Fabric(sim, make_topology("mesh", 16), NS_PER_BYTE)
    [(_, _, far)] = run_transfers(sim, fabric, [Message(0, 15, 32)])
    sim2 = Simulator()
    fabric2 = Fabric(sim2, make_topology("mesh", 16), NS_PER_BYTE)
    [(_, _, near)] = run_transfers(sim2, fabric2, [Message(0, 1, 32)])
    assert far.latency_ns == near.latency_ns  # hop-count independent
