"""Fully-mapped directory bookkeeping."""

import pytest

from repro.errors import ProtocolError
from repro.memory import Directory


def test_entries_created_lazily():
    directory = Directory()
    assert directory.peek(5) is None
    entry = directory.entry(5)
    assert entry.owner is None and entry.sharers == set()
    assert directory.peek(5) is entry
    assert len(directory) == 1


def test_entry_is_stable():
    directory = Directory()
    assert directory.entry(3) is directory.entry(3)


def test_clean_and_idle_predicates():
    directory = Directory()
    entry = directory.entry(1)
    assert entry.is_clean and entry.is_idle
    entry.sharers.add(0)
    assert entry.is_clean and not entry.is_idle
    entry.owner = 0
    assert not entry.is_clean


def test_drop_if_idle():
    directory = Directory()
    entry = directory.entry(1)
    entry.sharers.add(2)
    directory.drop_if_idle(1)
    assert directory.peek(1) is not None  # still shared
    entry.sharers.clear()
    directory.drop_if_idle(1)
    assert directory.peek(1) is None


def test_check_invariant():
    directory = Directory()
    entry = directory.entry(1)
    entry.owner = 3
    with pytest.raises(ProtocolError):
        entry.check()  # owner not in sharer set
    entry.sharers.add(3)
    entry.check()


def test_blocks_iteration():
    directory = Directory()
    directory.entry(1)
    directory.entry(9)
    assert sorted(directory.blocks()) == [1, 9]
