"""Synchronization semantics: locks, barriers, condition flags."""

import pytest

from repro import SystemConfig
from repro.core import ops
from repro.core.machine import Processor, make_machine
from repro.errors import SimulationError
from repro.units import us


def build(machine_name, nprocs=4, topology="full", **overrides):
    config = SystemConfig(processors=nprocs, topology=topology, **overrides)
    machine = make_machine(machine_name, config)
    array = machine.space.alloc("data", 256, 8, "interleaved")
    return machine, array


def run_programs(machine, programs):
    processors = [Processor(machine, pid) for pid in range(machine.nprocs)]
    machine.processors = processors
    for pid, program in programs.items():
        machine.sim.spawn(processors[pid].run(iter(program)), name=f"cpu{pid}")
    machine.sim.run()
    return processors


ALL_MACHINES = ("target", "logp", "clogp", "ideal")


# -- locks -------------------------------------------------------------------------


@pytest.mark.parametrize("machine_name", ALL_MACHINES)
def test_lock_provides_mutual_exclusion(machine_name):
    machine, _ = build(machine_name)
    log = []

    def critical(pid):
        yield ops.Lock(0)
        log.append(("in", pid, machine.sim.now))
        yield ops.Compute(100)
        log.append(("out", pid, machine.sim.now))
        yield ops.Unlock(0)

    run_programs(machine, {pid: critical(pid) for pid in range(4)})
    # Critical sections never overlap.
    intervals = []
    entries = {}
    for kind, pid, at in log:
        if kind == "in":
            entries[pid] = at
        else:
            intervals.append((entries[pid], at))
    intervals.sort()
    for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1


@pytest.mark.parametrize("machine_name", ALL_MACHINES)
def test_every_contender_eventually_acquires(machine_name):
    machine, _ = build(machine_name)
    acquired = []

    def contender(pid):
        yield ops.Lock(7)
        acquired.append(pid)
        yield ops.Unlock(7)

    run_programs(machine, {pid: contender(pid) for pid in range(4)})
    assert sorted(acquired) == [0, 1, 2, 3]
    assert machine.lock_acquisitions() == 4


def test_unlock_by_non_holder_is_an_error():
    machine, _ = build("ideal")

    def bad():
        yield ops.Unlock(0)

    with pytest.raises(SimulationError):
        run_programs(machine, {0: bad()})


def test_lock_traffic_on_target():
    """Acquiring a free remote lock reads then writes the lock word."""
    machine, _ = build("target")

    def prog():
        yield ops.Lock(0)
        yield ops.Unlock(0)

    [p0] = run_programs(machine, {0: prog()})[:1]
    # Lock word homed round-robin (node 0 here == pid 0): the first
    # sync word lands on node 0, so all traffic is local.  Acquire a
    # second lock to get a remote one.
    machine2, _ = build("target")

    def prog2():
        yield ops.Lock(0)  # home 0 (local)
        yield ops.Lock(1)  # home 1 (remote)
        yield ops.Unlock(1)
        yield ops.Unlock(0)

    [q0] = run_programs(machine2, {0: prog2()})[:1]
    assert machine2.message_count() > machine.message_count()


def test_spinning_waiters_recheck_on_release():
    """Losers of a release race re-read (miss) and keep waiting."""
    machine, _ = build("target")

    def holder():
        yield ops.Lock(0)
        yield ops.Compute(10_000)
        yield ops.Unlock(0)
        yield ops.Barrier(9)

    def waiter(pid):
        yield ops.Compute(10)  # arrive after the holder
        yield ops.Lock(0)
        yield ops.Compute(10_000)
        yield ops.Unlock(0)
        yield ops.Barrier(9)

    processors = run_programs(
        machine,
        {0: holder(), 1: waiter(1), 2: waiter(2), 3: waiter(3)},
    )
    # Everyone who waited logged spin time in sync/latency buckets.
    for processor in processors[1:]:
        waited = processor.buckets.sync_ns + processor.buckets.latency_ns
        assert waited > 0


# -- barriers ---------------------------------------------------------------------------


@pytest.mark.parametrize("machine_name", ALL_MACHINES)
def test_barrier_synchronizes_all_processors(machine_name):
    machine, _ = build(machine_name)
    after = {}

    def prog(pid):
        yield ops.Compute(pid * 1_000)  # staggered arrivals
        yield ops.Barrier(0)
        after[pid] = machine.sim.now

    run_programs(machine, {pid: prog(pid) for pid in range(4)})
    # Nobody leaves before the slowest arrival (3000ns of compute).
    assert min(after.values()) >= 3 * 1_000


@pytest.mark.parametrize("machine_name", ALL_MACHINES)
def test_barrier_is_reusable(machine_name):
    machine, _ = build(machine_name)
    order = []

    def prog(pid):
        for phase in range(3):
            yield ops.Compute((pid + 1) * 97)
            yield ops.Barrier(0)
            order.append((phase, pid))

    run_programs(machine, {pid: prog(pid) for pid in range(4)})
    phases = [phase for phase, _pid in order]
    assert phases == sorted(phases)  # no phase interleaving
    assert len(order) == 12


def test_single_processor_barrier_is_immediate():
    machine, _ = build("target", nprocs=1)

    def prog():
        yield ops.Barrier(0)
        yield ops.Barrier(0)

    [p0] = run_programs(machine, {0: prog()})[:1]
    assert p0.finish_ns < us(100)


# -- condition flags ------------------------------------------------------------------------


@pytest.mark.parametrize("machine_name", ALL_MACHINES)
def test_flag_wait_blocks_until_set(machine_name):
    machine, array = build(machine_name)
    flag_addr = array.addr(0)
    woke = {}

    def setter():
        yield ops.Compute(5_000)
        yield ops.SetFlag(flag_addr, 1)

    def waiter():
        yield ops.WaitFlag(flag_addr, 1)
        woke["at"] = machine.sim.now

    run_programs(machine, {0: setter(), 1: waiter(),
                           2: iter([]), 3: iter([])})
    assert woke["at"] >= 5_000


@pytest.mark.parametrize("machine_name", ALL_MACHINES)
def test_flag_already_set_does_not_block(machine_name):
    machine, array = build(machine_name)
    flag_addr = array.addr(8)

    def setter_then_waiter():
        yield ops.SetFlag(flag_addr, 3)
        yield ops.WaitFlag(flag_addr, 3, cmp="eq")

    [p0] = run_programs(machine, {0: setter_then_waiter()})[:1]
    assert p0.finish_ns < us(50)


def test_flag_ge_vs_eq():
    machine, array = build("ideal")
    flag_addr = array.addr(16)
    log = []

    def setter():
        yield ops.Compute(100)
        yield ops.SetFlag(flag_addr, 5)

    def ge_waiter():
        yield ops.WaitFlag(flag_addr, 3, cmp="ge")
        log.append("ge")

    run_programs(machine, {0: setter(), 1: ge_waiter(),
                           2: iter([]), 3: iter([])})
    assert log == ["ge"]


def test_flag_wait_two_misses_on_clogp():
    """The paper's EP observation: only the first and last accesses to
    a condition variable touch the network on the cached machine."""
    machine, array = build("clogp")
    # Flag homed on node 1 (interleaved), so remote for both 0 and 2.
    flag_addr = array.addr(4)
    assert machine.space.home_of(flag_addr) == 1

    def waiter():
        yield ops.WaitFlag(flag_addr, 1)

    def setter():
        yield ops.Compute(50_000)
        yield ops.SetFlag(flag_addr, 1)

    processors = run_programs(
        machine, {0: waiter(), 2: setter(), 1: iter([]), 3: iter([])}
    )
    # Waiter: initial read miss (1 RT) + re-read after invalidation
    # (1 RT) = 2 round trips = 4L of latency.
    assert processors[0].buckets.latency_ns == 4 * us(1.6)


def test_flag_wait_polls_on_logp():
    """... while the cache-less LogP machine polls throughout the wait."""
    machine, array = build("logp")
    flag_addr = array.addr(4)

    def waiter():
        yield ops.WaitFlag(flag_addr, 1)

    def setter():
        yield ops.Compute(50_000)  # 1.5 ms of compute
        yield ops.SetFlag(flag_addr, 1)

    processors = run_programs(
        machine, {0: waiter(), 2: setter(), 1: iter([]), 3: iter([])}
    )
    wait_ns = 50_000 * 30
    expected_polls = wait_ns // machine.config.poll_interval_ns
    # Each poll is a round trip (2L); allow the initial/final reads too.
    assert processors[0].buckets.latency_ns >= expected_polls * 2 * us(1.6)


def test_logp_poll_messages_counted():
    machine, array = build("logp")
    flag_addr = array.addr(4)

    def waiter():
        yield ops.WaitFlag(flag_addr, 1)

    def setter():
        yield ops.Compute(50_000)
        yield ops.SetFlag(flag_addr, 1)

    before = machine.message_count()
    run_programs(machine, {0: waiter(), 2: setter(),
                           1: iter([]), 3: iter([])})
    assert machine.message_count() - before > 100  # lots of polls
