"""Engine fast-path semantics: ring ordering, TURN grants, int sleeps.

The un-instrumented engine dispatches same-time work through a FIFO
ring and supports two allocation-free yield forms (``yield <int>``
sleeps and ``yield TURN`` grants).  These tests pin the property the
whole PR rests on: the fast paths execute the *same event sequence* as
the legacy heap-only instrumented engine, so simulated results cannot
depend on which loop ran.
"""

from __future__ import annotations

import pytest

from repro.checkers.base import Checker
from repro.engine.core import TURN, Simulator
from repro.engine.resource import Resource
from repro.errors import WatchdogError
from repro.core.runner import simulate_spec
from repro.runspec import RunSpec


class _HookedChecker(Checker):
    """Minimal checker whose engine hook forces the legacy heap loop."""

    name = "hooked"

    def __init__(self):
        super().__init__()
        self.seen = 0

    def on_event(self, at, seq, action):
        self.seen += 1


def _run_scenario(sim: Simulator):
    """Two processes interleaving zero-delay sleeps, real sleeps, and
    resource grants; returns the observed execution order."""
    log = []
    lock = Resource(sim, capacity=1, name="lock")

    def worker(tag):
        log.append((tag, "start", sim.now))
        yield 0  # zero-delay sleep: same-time redispatch
        log.append((tag, "after-zero", sim.now))
        yield TURN if lock.try_acquire() else lock.request()
        log.append((tag, "locked", sim.now))
        yield 7
        log.append((tag, "held", sim.now))
        lock.release()
        yield 3
        log.append((tag, "done", sim.now))

    sim.spawn(worker("a"))
    sim.spawn(worker("b"))
    sim.run()
    return log


def test_fast_ring_matches_instrumented_heap_order():
    # The ring-based fast loop and the hooked heap-only loop must
    # execute the identical sequence (the instrumented sim sees real
    # (time, seq) pairs; the fast sim bypasses them -- same results).
    fast_log = _run_scenario(Simulator())
    checker = _HookedChecker()
    hooked_sim = Simulator(checkers=(checker,))
    assert hooked_sim._instrumented
    hooked_log = _run_scenario(hooked_sim)
    assert fast_log == hooked_log
    assert checker.seen > 0


def test_turn_grant_is_equivalent_to_event_grant():
    # A process granting via try_acquire + TURN interleaves exactly
    # like one yielding the granted request() event.
    def scenario(use_turn):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def contender(tag):
            if use_turn:
                yield TURN if res.try_acquire() else res.request()
            else:
                yield res.request()
            log.append((tag, "granted", sim.now))
            yield 5
            res.release()
            log.append((tag, "released", sim.now))

        def bystander():
            log.append(("c", "tick", sim.now))
            yield 5
            log.append(("c", "tock", sim.now))

        sim.spawn(contender("a"))
        sim.spawn(bystander())
        sim.spawn(contender("b"))
        sim.run()
        return log

    assert scenario(use_turn=True) == scenario(use_turn=False)


def test_int_sleep_matches_timeout_event():
    # ``yield n`` resumes at the same point as ``yield sim.timeout(n)``.
    def scenario(use_int):
        sim = Simulator()
        log = []

        def sleeper(tag, delay):
            if use_int:
                yield delay
            else:
                yield sim.timeout(delay)
            log.append((tag, sim.now))

        sim.spawn(sleeper("a", 10))
        sim.spawn(sleeper("b", 0))
        sim.spawn(sleeper("c", 10))
        sim.run()
        return log

    assert scenario(True) == scenario(False) == \
        [("b", 0), ("a", 10), ("c", 10)]


def test_pooled_timeouts_are_recycled():
    sim = Simulator()
    resumed = []

    def proc():
        first = sim.timeout(4)
        yield first
        resumed.append(sim.now)
        # ``first`` is still mid-dispatch here (it returns to the pool
        # only after its callbacks finish, so waiters can still read its
        # value), hence the second timeout is a fresh object ...
        second = sim.timeout(6)
        assert second is not first
        yield second
        resumed.append(sim.now)
        # ... and by now ``first`` has been pooled and gets recycled.
        third = sim.timeout(2)
        assert third is first
        yield third
        resumed.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert resumed == [4, 10, 12]
    profile = sim.engine_profile()
    assert profile["timeouts_issued"] == 3
    assert profile["timeouts_pooled"] == 1


def test_until_horizon_in_guarded_loop():
    # ``until`` runs through _run_guarded (checker-free, ring-aware):
    # events past the horizon stay queued and the clock parks at it.
    sim = Simulator()
    seen = []

    def ticker():
        for _ in range(10):
            yield 0  # ring entries must not outrun the horizon logic
            yield 4
            seen.append(sim.now)

    sim.spawn(ticker())
    assert sim.run(until=10) == 10
    assert sim.now == 10
    assert seen == [4, 8]
    sim.run()  # drain the rest
    assert seen == [4, 8, 12, 16, 20, 24, 28, 32, 36, 40]


def test_watchdog_counts_ring_events():
    # max_events must count ring-dispatched work too, or a same-time
    # livelock (e.g. two processes ping-ponging zero-delay sleeps)
    # would never trip the watchdog.
    sim = Simulator()

    def livelock():
        while True:
            yield 0

    sim.spawn(livelock())
    with pytest.raises(WatchdogError) as excinfo:
        sim.run(max_events=500)
    assert excinfo.value.events == 500


def test_batch_local_parity_exact():
    # Uncontended message-passing run: releasing local time eagerly vs
    # batched must not change any simulated outcome.
    kwargs = dict(app="cg", machine="logp", nprocs=4, preset="quick")
    batched = simulate_spec(RunSpec.build(batch_local=True, **kwargs))
    eager = simulate_spec(RunSpec.build(batch_local=False, **kwargs))
    assert batched.total_ns == eager.total_ns
    assert batched.messages == eager.messages
    for b1, b2 in zip(batched.buckets, eager.buckets):
        assert b1.compute_ns == b2.compute_ns
        assert b1.memory_ns == b2.memory_ns


def test_batch_local_parity_invariants_under_contention():
    # On the contended target machine the release points shift the
    # interleaving, so total time may wiggle -- but the work done
    # (messages, compute, memory service) is identical and the time
    # shift stays marginal.
    kwargs = dict(app="jacobi", machine="target", nprocs=4, preset="quick")
    batched = simulate_spec(RunSpec.build(batch_local=True, **kwargs))
    eager = simulate_spec(RunSpec.build(batch_local=False, **kwargs))
    assert batched.messages == eager.messages
    assert sum(b.compute_ns for b in batched.buckets) == \
        sum(b.compute_ns for b in eager.buckets)
    assert sum(b.memory_ns for b in batched.buckets) == \
        sum(b.memory_ns for b in eager.buckets)
    assert abs(batched.total_ns - eager.total_ns) < 0.01 * batched.total_ns
