"""The MG multigrid kernel (suite extension)."""

import numpy as np
import pytest

from repro import ApplicationError, SystemConfig, simulate
from repro.apps import make_app
from repro.apps.mg import prolong, residual, restrict, smooth


# -- numerics ------------------------------------------------------------------------


def test_smooth_fixes_the_exact_solution():
    """The discrete solution is a fixed point of the smoother."""
    n = 31
    h2 = (1.0 / (n + 1)) ** 2
    x = np.linspace(1.0 / (n + 1), n / (n + 1), n)
    u = np.sin(np.pi * x)
    # Discrete operator applied to u gives f with residual zero.
    padded = np.concatenate(([0.0], u, [0.0]))
    f = (2.0 * u - padded[:-2] - padded[2:]) / h2
    smoothed = smooth(u, f, h2)
    assert np.allclose(smoothed, u)
    assert np.allclose(residual(u, f, h2), 0.0)


def test_restrict_and_prolong_shapes():
    fine = np.arange(15, dtype=float)
    coarse = restrict(fine)
    assert len(coarse) == 7
    back = prolong(coarse, 15)
    assert len(back) == 15
    # Coarse points land at odd fine indices.
    assert np.allclose(back[1::2], coarse)


def test_restrict_full_weighting():
    # A spike at a coarse point (odd fine index) keeps half its weight...
    fine = np.zeros(7)
    fine[3] = 4.0
    assert np.allclose(restrict(fine), [0.0, 2.0, 0.0])
    # ... and a spike between coarse points splits across both.
    fine = np.zeros(7)
    fine[2] = 4.0
    assert np.allclose(restrict(fine), [1.0, 1.0, 0.0])


def test_vcycle_converges():
    app = make_app("mg", 2, n=511, cycles=3)
    config = SystemConfig(processors=2)
    simulate(app, "ideal", config)
    norms = app.residual_norms
    assert len(norms) == 4
    assert norms[-1] < 0.1 * norms[0]


# -- parameter validation -------------------------------------------------------------


def test_mg_rejects_bad_sizes():
    with pytest.raises(ApplicationError):
        make_app("mg", 4, n=512)  # not 2^k - 1
    with pytest.raises(ApplicationError):
        make_app("mg", 32, n=63)  # too small for 32 processors
    with pytest.raises(ApplicationError):
        make_app("mg", 2, cycles=0)


def test_mg_builds_a_hierarchy():
    app = make_app("mg", 4, n=1_023)
    assert app.sizes[0] == 1_023
    assert all(a == 2 * b + 1 for a, b in zip(app.sizes, app.sizes[1:]))
    assert app.sizes[-1] >= 16  # 4 * nprocs


# -- simulation ---------------------------------------------------------------------------


@pytest.mark.parametrize("machine", ["target", "clogp", "logp", "ideal"])
def test_mg_verifies_on_every_machine(machine):
    config = SystemConfig(processors=4, topology="cube")
    result = simulate(
        make_app("mg", 4, n=255, cycles=1), machine, config,
        check_invariants=True,
    )
    assert result.verified


@pytest.mark.parametrize("nprocs", [1, 2, 8])
def test_mg_verifies_across_processor_counts(nprocs):
    config = SystemConfig(processors=nprocs, topology="mesh")
    result = simulate(
        make_app("mg", nprocs, n=255, cycles=1), "clogp", config
    )
    assert result.verified


def test_mg_matches_sequential_solution_exactly():
    app = make_app("mg", 8, n=511, cycles=2)
    simulate(app, "target", SystemConfig(processors=8))
    assert np.allclose(app.u[0], app._sequential_solution(), atol=1e-12)


def test_mg_paper_orderings_hold():
    """The new kernel obeys the same machine-model orderings."""
    results = {}
    for machine in ("target", "clogp", "logp"):
        config = SystemConfig(processors=8, topology="cube")
        results[machine] = simulate(
            make_app("mg", 8, n=511, cycles=1), machine, config
        )
    assert results["logp"].total_ns > results["clogp"].total_ns
    target_latency = results["target"].mean_latency_us
    clogp_latency = results["clogp"].mean_latency_us
    assert 0.4 * target_latency <= clogp_latency <= 2.5 * target_latency
    assert results["logp"].mean_latency_us > 2 * target_latency
