"""Deterministic random streams."""

import numpy as np

from repro.engine import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(7).stream("app", 0).random(16)
    b = RandomStreams(7).stream("app", 0).random(16)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomStreams(7).stream("app", 0).random(16)
    b = RandomStreams(8).stream("app", 0).random(16)
    assert not np.array_equal(a, b)


def test_different_names_differ():
    streams = RandomStreams(7)
    a = streams.stream("alpha").random(16)
    b = streams.stream("beta").random(16)
    assert not np.array_equal(a, b)


def test_different_indices_differ():
    streams = RandomStreams(7)
    a = streams.stream("app", 0).random(16)
    b = streams.stream("app", 1).random(16)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_stateful():
    streams = RandomStreams(7)
    first = streams.stream("app").random(4)
    second = streams.stream("app").random(4)
    # Same generator object: state advanced, draws differ.
    assert not np.array_equal(first, second)


def test_fresh_resets_state():
    streams = RandomStreams(7)
    first = streams.fresh("app").random(4)
    streams.stream("app").random(10)  # advance
    second = streams.fresh("app").random(4)
    assert np.array_equal(first, second)


def test_per_machine_replay_property():
    """Two machines built from the same seed see identical workloads."""

    def draws(seed):
        streams = RandomStreams(seed)
        return [streams.stream("keys", pid).integers(0, 100, 8).tolist()
                for pid in range(4)]

    assert draws(123) == draws(123)
