"""Crash-tolerant sweeps: per-point failure records, checkpoint, resume."""

import json

import pytest

import repro.experiments.runner as runner_module
from repro.errors import ConfigError, ReproError, RetryLimitError
from repro.experiments import get_experiment
from repro.experiments.runner import PointFailure, SweepRunner


@pytest.fixture
def failing_simulate(monkeypatch):
    """Make every LogP-machine run die; other machines run normally."""
    real_simulate = runner_module.simulate
    calls = {"failed": 0}

    def flaky(app, machine_name, config, **kwargs):
        if machine_name == "logp":
            calls["failed"] += 1
            raise RetryLimitError(0, 1, 3, 12345)
        return real_simulate(app, machine_name, config, **kwargs)

    monkeypatch.setattr(runner_module, "simulate", flaky)
    return calls


def test_sweep_survives_failing_point(failing_simulate):
    runner = SweepRunner(preset="quick", processors=(1, 4))
    data = runner.run_experiment(get_experiment("fig01"))
    # The healthy series are intact...
    assert all(v == v for v in data.series["target"])  # no nan
    assert all(v == v for v in data.series["clogp"])
    # ...and the failing one degraded to nan with structured records.
    assert all(v != v for v in data.series["logp"])  # all nan
    assert len(data.failures) == 2
    failure = data.failures[0]
    assert isinstance(failure, PointFailure)
    assert failure.machine == "logp"
    assert failure.error == "RetryLimitError"
    assert "undeliverable" in failure.message


def test_failing_point_is_retried_once_then_recorded(failing_simulate):
    runner = SweepRunner(preset="quick", processors=(1,), run_retries=1)
    outcome = runner.run_point("fft", "logp", "full", 1)
    assert isinstance(outcome, PointFailure)
    assert outcome.attempts == 2  # initial + one retry
    assert failing_simulate["failed"] == 2
    # The failure is memoized: asking again does not re-run.
    runner.run_point("fft", "logp", "full", 1)
    assert failing_simulate["failed"] == 2


def test_run_one_raises_on_failed_point(failing_simulate):
    runner = SweepRunner(preset="quick", processors=(1,))
    with pytest.raises(ReproError, match="sweep point failed"):
        runner.run_one("fft", "logp", "full", 1)


def test_checkpoint_written_and_resumed(tmp_path, failing_simulate):
    checkpoint = tmp_path / "sweep.json"
    first = SweepRunner(preset="quick", processors=(1, 4),
                        checkpoint_path=checkpoint)
    first.run_experiment(get_experiment("fig01"))
    assert checkpoint.exists()
    payload = json.loads(checkpoint.read_text())
    assert payload["version"] == 1
    assert payload["results"]  # completed points journaled
    assert payload["failures"]  # failed points journaled
    completed_before = len(payload["results"])

    # A fresh runner resumes: no simulation re-runs at all.
    failing_simulate["failed"] = 0
    baseline_cache = dict(first._cache)
    second = SweepRunner(preset="quick", processors=(1, 4),
                         checkpoint_path=checkpoint)
    assert len(second._cache) == completed_before
    data = second.run_experiment(get_experiment("fig01"))
    assert failing_simulate["failed"] == 0  # failures resumed, not re-run
    for key, result in second._cache.items():
        assert result.total_ns == baseline_cache[key].total_ns
    assert len(data.failures) == 2


def test_checkpoint_resume_completes_partial_sweep(tmp_path):
    """Points finished before a crash are not re-simulated after it."""
    checkpoint = tmp_path / "sweep.json"
    first = SweepRunner(preset="quick", processors=(1, 4),
                        checkpoint_path=checkpoint)
    first.run_point("fft", "clogp", "full", 1)
    runs = {"count": 0}
    real_simulate = runner_module.simulate

    def counting(app, machine_name, config, **kwargs):
        runs["count"] += 1
        return real_simulate(app, machine_name, config, **kwargs)

    second = SweepRunner(preset="quick", processors=(1, 4),
                         checkpoint_path=checkpoint)
    try:
        runner_module.simulate = counting
        second.run_point("fft", "clogp", "full", 1)  # resumed
        assert runs["count"] == 0
        second.run_point("fft", "clogp", "full", 4)  # new work
        assert runs["count"] == 1
    finally:
        runner_module.simulate = real_simulate


def test_render_figure_marks_failed_points(failing_simulate):
    from repro.experiments import render_figure

    runner = SweepRunner(preset="quick", processors=(1, 4))
    text = render_figure(runner.run_experiment(get_experiment("fig01")))
    assert "--" in text
    assert "FAILED" in text
    assert "RetryLimitError" in text


# -- satellite 2: FigureData.value diagnostics --------------------------------------


def test_figure_value_names_missing_machine():
    runner = SweepRunner(preset="quick", processors=(1,))
    data = runner.run_experiment(get_experiment("fig01"))
    with pytest.raises(ConfigError, match="no series for machine 'vax'"):
        data.value("vax", 1)


def test_figure_value_names_missing_processor_count():
    runner = SweepRunner(preset="quick", processors=(1,))
    data = runner.run_experiment(get_experiment("fig01"))
    with pytest.raises(ConfigError, match="was not run at p=64"):
        data.value("target", 64)


# -- durable checkpoints -------------------------------------------------------------


def test_truncated_checkpoint_raises_config_error_naming_file(tmp_path):
    """A half-written checkpoint must fail loudly with the file's path,
    not resume silently from garbage."""
    checkpoint = tmp_path / "sweep.json"
    runner = SweepRunner(preset="quick", processors=(2,),
                         checkpoint_path=checkpoint)
    runner.run_point("fft", "ideal", "full", 2)
    assert checkpoint.exists()
    payload = checkpoint.read_bytes()
    checkpoint.write_bytes(payload[: len(payload) // 2])
    with pytest.raises(ConfigError) as excinfo:
        SweepRunner(preset="quick", checkpoint_path=checkpoint)
    assert str(checkpoint) in str(excinfo.value)


def test_checkpoint_save_fsyncs_before_rename(tmp_path, monkeypatch):
    """The temp file is fsynced before the atomic rename, so a crash
    leaves either the old or the new checkpoint -- never a short one."""
    import os as os_module

    synced = []
    real_fsync = os_module.fsync
    monkeypatch.setattr(
        runner_module.os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd)
    )
    replaced = []
    real_replace = os_module.replace

    def spy_replace(src, dst):
        replaced.append(bool(synced))  # fsync must have happened already
        return real_replace(src, dst)

    monkeypatch.setattr(runner_module.os, "replace", spy_replace)
    runner = SweepRunner(preset="quick", processors=(2,),
                         checkpoint_path=tmp_path / "sweep.json")
    runner.run_point("fft", "ideal", "full", 2)
    assert replaced and all(replaced)
