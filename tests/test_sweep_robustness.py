"""Crash-tolerant sweeps: per-point failure records, checkpoint, resume."""

import json

import pytest

import repro.exec.backend as backend_module
import repro.experiments.runner as runner_module
from repro.errors import ConfigError, ReproError, RetryLimitError
from repro.experiments import get_experiment
from repro.experiments.runner import PointFailure, SweepRunner


@pytest.fixture
def failing_simulate(monkeypatch):
    """Make every LogP-machine run die; other machines run normally.

    Execution lives in the backend layer now, so that is where the
    simulation entry point is patched.
    """
    real_simulate = backend_module.simulate
    calls = {"failed": 0}

    def flaky(app, machine_name, config, **kwargs):
        if machine_name == "logp":
            calls["failed"] += 1
            raise RetryLimitError(0, 1, 3, 12345)
        return real_simulate(app, machine_name, config, **kwargs)

    monkeypatch.setattr(backend_module, "simulate", flaky)
    return calls


def test_sweep_survives_failing_point(failing_simulate):
    runner = SweepRunner(preset="quick", processors=(1, 4))
    data = runner.run_experiment(get_experiment("fig01"))
    # The healthy series are intact...
    assert all(v == v for v in data.series["target"])  # no nan
    assert all(v == v for v in data.series["clogp"])
    # ...and the failing one degraded to nan with structured records.
    assert all(v != v for v in data.series["logp"])  # all nan
    assert len(data.failures) == 2
    failure = data.failures[0]
    assert isinstance(failure, PointFailure)
    assert failure.machine == "logp"
    assert failure.error == "RetryLimitError"
    assert "undeliverable" in failure.message


def test_failing_point_is_retried_once_then_recorded(failing_simulate):
    runner = SweepRunner(preset="quick", processors=(1,), run_retries=1)
    outcome = runner.run_point("fft", "logp", "full", 1)
    assert isinstance(outcome, PointFailure)
    assert outcome.attempts == 2  # initial + one retry
    assert failing_simulate["failed"] == 2
    # The failure is memoized: asking again does not re-run.
    runner.run_point("fft", "logp", "full", 1)
    assert failing_simulate["failed"] == 2


def test_run_one_raises_on_failed_point(failing_simulate):
    runner = SweepRunner(preset="quick", processors=(1,))
    with pytest.raises(ReproError, match="sweep point failed"):
        runner.run_one("fft", "logp", "full", 1)


def test_checkpoint_written_and_resumed(tmp_path, failing_simulate):
    checkpoint = tmp_path / "sweep.json"
    first = SweepRunner(preset="quick", processors=(1, 4),
                        checkpoint_path=checkpoint)
    first.run_experiment(get_experiment("fig01"))
    assert checkpoint.exists()
    payload = json.loads(checkpoint.read_text())
    assert payload["version"] == runner_module.CHECKPOINT_SCHEMA
    assert payload["results"]  # completed points journaled
    assert payload["failures"]  # failed points journaled
    completed_before = len(payload["results"])

    # A fresh runner resumes: no simulation re-runs at all.
    failing_simulate["failed"] = 0
    baseline_cache = dict(first._cache)
    second = SweepRunner(preset="quick", processors=(1, 4),
                         checkpoint_path=checkpoint)
    assert len(second._cache) == completed_before
    data = second.run_experiment(get_experiment("fig01"))
    assert failing_simulate["failed"] == 0  # failures resumed, not re-run
    for key, result in second._cache.items():
        assert result.total_ns == baseline_cache[key].total_ns
    assert len(data.failures) == 2


def test_checkpoint_resume_completes_partial_sweep(tmp_path):
    """Points finished before a crash are not re-simulated after it."""
    checkpoint = tmp_path / "sweep.json"
    first = SweepRunner(preset="quick", processors=(1, 4),
                        checkpoint_path=checkpoint)
    first.run_point("fft", "clogp", "full", 1)
    runs = {"count": 0}
    real_simulate = backend_module.simulate

    def counting(app, machine_name, config, **kwargs):
        runs["count"] += 1
        return real_simulate(app, machine_name, config, **kwargs)

    second = SweepRunner(preset="quick", processors=(1, 4),
                         checkpoint_path=checkpoint)
    try:
        backend_module.simulate = counting
        second.run_point("fft", "clogp", "full", 1)  # resumed
        assert runs["count"] == 0
        second.run_point("fft", "clogp", "full", 4)  # new work
        assert runs["count"] == 1
    finally:
        backend_module.simulate = real_simulate


def test_render_figure_marks_failed_points(failing_simulate):
    from repro.experiments import render_figure

    runner = SweepRunner(preset="quick", processors=(1, 4))
    text = render_figure(runner.run_experiment(get_experiment("fig01")))
    assert "--" in text
    assert "FAILED" in text
    assert "RetryLimitError" in text


# -- satellite 2: FigureData.value diagnostics --------------------------------------


def test_figure_value_names_missing_machine():
    runner = SweepRunner(preset="quick", processors=(1,))
    data = runner.run_experiment(get_experiment("fig01"))
    with pytest.raises(ConfigError, match="no series for machine 'vax'"):
        data.value("vax", 1)


def test_figure_value_names_missing_processor_count():
    runner = SweepRunner(preset="quick", processors=(1,))
    data = runner.run_experiment(get_experiment("fig01"))
    with pytest.raises(ConfigError, match="was not run at p=64"):
        data.value("target", 64)


# -- durable checkpoints -------------------------------------------------------------


def test_truncated_checkpoint_raises_config_error_naming_file(tmp_path):
    """A half-written checkpoint must fail loudly with the file's path,
    not resume silently from garbage."""
    checkpoint = tmp_path / "sweep.json"
    runner = SweepRunner(preset="quick", processors=(2,),
                         checkpoint_path=checkpoint)
    runner.run_point("fft", "ideal", "full", 2)
    assert checkpoint.exists()
    payload = checkpoint.read_bytes()
    checkpoint.write_bytes(payload[: len(payload) // 2])
    with pytest.raises(ConfigError) as excinfo:
        SweepRunner(preset="quick", checkpoint_path=checkpoint)
    assert str(checkpoint) in str(excinfo.value)


def test_checkpoint_save_fsyncs_before_rename(tmp_path, monkeypatch):
    """The temp file is fsynced before the atomic rename, so a crash
    leaves either the old or the new checkpoint -- never a short one."""
    import os as os_module

    synced = []
    real_fsync = os_module.fsync
    monkeypatch.setattr(
        runner_module.os, "fsync",
        lambda fd: synced.append(fd) or real_fsync(fd),
    )
    replaced = []
    real_replace = os_module.replace

    def spy_replace(src, dst):
        replaced.append(bool(synced))  # fsync must have happened already
        return real_replace(src, dst)

    monkeypatch.setattr(runner_module.os, "replace", spy_replace)
    runner = SweepRunner(preset="quick", processors=(2,),
                         checkpoint_path=tmp_path / "sweep.json")
    runner.run_point("fft", "ideal", "full", 2)
    assert replaced and all(replaced)


def test_keyboard_interrupt_flushes_streamed_points(tmp_path):
    """Ctrl-C mid-batch must journal every point that already streamed
    back, so --resume re-runs only the unfinished remainder."""
    from repro.exec.backend import SerialBackend, execute_spec

    class InterruptingBackend(SerialBackend):
        """Completes the first point, then simulates a Ctrl-C."""

        def run(self, specs, retries=1):
            yield specs[0], execute_spec(specs[0])
            raise KeyboardInterrupt

    checkpoint = tmp_path / "sweep.json"
    runner = SweepRunner(preset="quick", processors=(1, 4),
                         checkpoint_path=checkpoint,
                         backend=InterruptingBackend())
    specs = [runner.point_spec("fft", "ideal", "full", p) for p in (1, 4)]
    with pytest.raises(KeyboardInterrupt):
        runner.run_batch(specs)
    # The completed point made it to disk before the interrupt escaped.
    payload = json.loads(checkpoint.read_text())
    assert len(payload["results"]) == 1
    resumed = SweepRunner(preset="quick", processors=(1, 4),
                          checkpoint_path=checkpoint)
    assert resumed.outcome_of(specs[0]) is not None
    assert resumed.outcome_of(specs[1]) is None


def test_supervised_backend_checkpoints_before_pool_rebuild(tmp_path):
    """The runner registers its checkpoint flush as a rebuild listener,
    so recovery from a worker crash never races the journal."""
    from repro.exec import SupervisedPoolBackend

    backend = SupervisedPoolBackend(2)
    try:
        runner = SweepRunner(preset="quick", processors=(1, 4),
                             checkpoint_path=tmp_path / "sweep.json",
                             backend=backend)
        assert runner._save_checkpoint in backend._rebuild_listeners
    finally:
        backend.close()


# -- checkpoint schema versioning ----------------------------------------------------


def test_stale_v1_checkpoint_is_rejected(tmp_path):
    """A tuple-keyed (schema 1) checkpoint must be rejected loudly, not
    silently resumed as the wrong points."""
    checkpoint = tmp_path / "sweep.json"
    checkpoint.write_text(json.dumps({
        "version": 1,
        "preset": "quick",
        "seed": 12345,
        "results": {
            "fft|clogp|full|4|quick|False|False|berkeley": {"total_ns": 1},
        },
        "failures": {},
    }))
    with pytest.raises(ConfigError) as excinfo:
        SweepRunner(preset="quick", checkpoint_path=checkpoint)
    message = str(excinfo.value)
    assert "schema version 1" in message
    assert str(checkpoint) in message


def test_versionless_checkpoint_is_rejected(tmp_path):
    checkpoint = tmp_path / "sweep.json"
    checkpoint.write_text(json.dumps({"results": {}, "failures": {}}))
    with pytest.raises(ConfigError, match="schema version None"):
        SweepRunner(preset="quick", checkpoint_path=checkpoint)


def test_checkpoint_with_foreign_config_schema_is_rejected(tmp_path):
    """An entry whose serialized config carries unknown fields (written
    by a future schema) must raise, not resume with defaults."""
    checkpoint = tmp_path / "sweep.json"
    runner = SweepRunner(preset="quick", processors=(2,),
                         checkpoint_path=checkpoint)
    runner.run_point("fft", "ideal", "full", 2)
    payload = json.loads(checkpoint.read_text())
    (entry,) = payload["results"].values()
    entry["spec"]["config"]["warp_factor"] = 9
    checkpoint.write_text(json.dumps(payload))
    with pytest.raises(ConfigError, match="warp_factor"):
        SweepRunner(preset="quick", checkpoint_path=checkpoint)


def test_checkpoint_digest_mismatch_is_rejected(tmp_path):
    """A journaled spec that re-hashes to a different digest means the
    file was tampered with or written by a different schema."""
    checkpoint = tmp_path / "sweep.json"
    runner = SweepRunner(preset="quick", processors=(2,),
                         checkpoint_path=checkpoint)
    runner.run_point("fft", "ideal", "full", 2)
    payload = json.loads(checkpoint.read_text())
    (entry,) = payload["results"].values()
    entry["spec"]["config"]["seed"] = 999  # silently edited point
    checkpoint.write_text(json.dumps(payload))
    with pytest.raises(ConfigError, match="re-hashes"):
        SweepRunner(preset="quick", checkpoint_path=checkpoint)


def test_checkpoint_does_not_alias_differing_seeds(tmp_path):
    """The retired RunKey dropped the seed, so a resumed sweep with a
    different master seed silently reused the old seed's results.  The
    digest keys must keep them apart."""
    checkpoint = tmp_path / "sweep.json"
    first = SweepRunner(preset="quick", processors=(2,), seed=1,
                        checkpoint_path=checkpoint)
    first.run_point("fft", "clogp", "full", 2)
    second = SweepRunner(preset="quick", processors=(2,), seed=2,
                         checkpoint_path=checkpoint)
    spec = second.point_spec("fft", "clogp", "full", 2)
    assert second.outcome_of(spec) is None  # different seed: not resumed
    runs = {"count": 0}
    real_simulate = backend_module.simulate

    def counting(app, machine_name, config, **kwargs):
        runs["count"] += 1
        return real_simulate(app, machine_name, config, **kwargs)

    try:
        backend_module.simulate = counting
        second.run_point("fft", "clogp", "full", 2)
        assert runs["count"] == 1  # re-simulated under the new seed
    finally:
        backend_module.simulate = real_simulate
