"""Application functional correctness across machines and sizes."""

import numpy as np
import pytest

from repro import ApplicationError, simulate, simulate_full
from repro.apps import APPLICATIONS, make_app
from repro.apps.base import block_partition
from repro.apps.fft import bit_reverse_permutation

from tests.conftest import ALL_APPS, ALL_MACHINES, tiny_app, tiny_config


# -- partition helper --------------------------------------------------------------


def test_block_partition_covers_everything():
    for count in (7, 16, 33):
        for nprocs in (1, 2, 4, 8):
            covered = []
            for pid in range(nprocs):
                lo, hi = block_partition(count, nprocs, pid)
                covered.extend(range(lo, hi))
            assert covered == list(range(count))


def test_block_partition_is_balanced():
    sizes = [
        hi - lo
        for pid in range(4)
        for lo, hi in [block_partition(10, 4, pid)]
    ]
    assert max(sizes) - min(sizes) <= 1


# -- registry ------------------------------------------------------------------------


def test_application_registry():
    # The paper's five plus the jacobi/mg stencil extensions.
    assert set(APPLICATIONS) == {
        "ep", "is", "cg", "fft", "cholesky", "jacobi", "mg",
    }


def test_unknown_application():
    with pytest.raises(KeyError):
        make_app("lu", 4)


def test_application_cannot_be_reused():
    config = tiny_config(2)
    app = tiny_app("fft", 2)
    simulate(app, "ideal", config)
    with pytest.raises(ApplicationError):
        simulate(app, "ideal", config)


# -- cross-product verification ---------------------------------------------------------


@pytest.mark.parametrize("app_name", ALL_APPS)
@pytest.mark.parametrize("machine", ALL_MACHINES)
def test_apps_verify_on_every_machine(app_name, machine):
    config = tiny_config(4, "cube")
    result = simulate(tiny_app(app_name, 4), machine, config,
                      check_invariants=True)
    assert result.verified


@pytest.mark.parametrize("app_name", ALL_APPS)
@pytest.mark.parametrize("nprocs", [1, 2, 8])
def test_apps_verify_across_processor_counts(app_name, nprocs):
    config = tiny_config(nprocs, "mesh")
    result = simulate(tiny_app(app_name, nprocs), "clogp", config)
    assert result.verified


@pytest.mark.parametrize("app_name", ALL_APPS)
def test_apps_functionally_identical_across_machines(app_name):
    """Every machine model must replay the same workload."""
    totals = {}
    for machine in ("target", "clogp"):
        config = tiny_config(4)
        result = simulate(tiny_app(app_name, 4), machine, config)
        totals[machine] = result
    # The same messages cannot be asserted, but the per-machine cache
    # systems saw the same reference stream: miss counts agree.
    # (Asserted indirectly: verified on both machines.)
    assert all(r.verified for r in totals.values())


# -- FFT specifics ------------------------------------------------------------------------


def test_bit_reverse_permutation():
    assert bit_reverse_permutation(8).tolist() == [0, 4, 2, 6, 1, 5, 3, 7]


def test_fft_matches_numpy():
    config = tiny_config(4)
    app = tiny_app("fft", 4)
    simulate(app, "ideal", config)
    assert np.allclose(app.values, np.fft.fft(app.input), atol=1e-6)


def test_fft_rejects_bad_sizes():
    with pytest.raises(ApplicationError):
        make_app("fft", 4, points=100)  # not a power of two
    with pytest.raises(ApplicationError):
        make_app("fft", 4, points=4)  # too small for 4 procs


# -- IS specifics ---------------------------------------------------------------------------


def test_is_ranks_sort_the_keys():
    config = tiny_config(4)
    app = tiny_app("is", 4)
    simulate(app, "target", config)
    ordered = np.empty(app.nkeys, dtype=np.int64)
    ordered[app.rank_values] = app.keys
    assert np.all(np.diff(ordered) >= 0)
    # Ranks are a permutation.
    assert sorted(app.rank_values) == list(range(app.nkeys))


def test_is_parameter_validation():
    with pytest.raises(ValueError):
        make_app("is", 4, keys=2)
    with pytest.raises(ValueError):
        make_app("is", 4, iterations=0)


# -- CG specifics ----------------------------------------------------------------------------


def test_cg_residuals_match_sequential_recurrence():
    config = tiny_config(4)
    app = tiny_app("cg", 4)
    simulate(app, "clogp", config)
    assert np.allclose(app.residuals, app._sequential_residuals(), rtol=1e-6)


def test_cg_matrix_is_symmetric_positive_definite():
    from repro.engine import RandomStreams
    from repro.memory import AddressSpace

    app = tiny_app("cg", 4)
    app.setup(AddressSpace(4, 32), RandomStreams(1))
    assert np.allclose(app.A, app.A.T)
    eigenvalues = np.linalg.eigvalsh(app.A)
    assert eigenvalues.min() > 0


def test_cg_converges():
    config = tiny_config(2)
    app = make_app("cg", 2, n=64, nnz_per_row=4, iterations=6)
    simulate(app, "ideal", config)
    assert app.residuals[-1] < 0.5 * app.residuals[0]


# -- EP specifics -----------------------------------------------------------------------------


def test_ep_global_sums_equal_partials():
    config = tiny_config(4)
    app = tiny_app("ep", 4)
    simulate(app, "target", config)
    expected = sum(app._partials)
    assert np.allclose(app.global_sums, expected)


def test_ep_acceptance_rate_near_pi_over_4():
    config = tiny_config(2)
    app = make_app("ep", 2, pairs=16_384)
    simulate(app, "ideal", config)
    rate = app.global_sums[2:].sum() / app.pairs
    assert abs(rate - np.pi / 4) < 0.02


def test_ep_deterministic_across_machines():
    sums = []
    for machine in ("ideal", "logp"):
        config = tiny_config(4)
        app = tiny_app("ep", 4)
        simulate(app, machine, config)
        sums.append(app.global_sums.copy())
    assert np.allclose(sums[0], sums[1])


# -- CHOLESKY specifics -------------------------------------------------------------------------


def test_cholesky_factor_is_exact():
    config = tiny_config(4)
    app = tiny_app("cholesky", 4)
    simulate(app, "target", config)
    factor = np.zeros((app.n, app.n))
    for j in range(app.n):
        factor[app.col_rows[j], j] = app.col_values[j]
    assert np.allclose(factor, app.L0, atol=1e-9)
    # And L0 @ L0.T really is the Cholesky factorization of A.
    assert np.allclose(factor @ factor.T, app.L0 @ app.L0.T)


def test_cholesky_schedule_respects_dependences():
    config = tiny_config(4)
    app = tiny_app("cholesky", 4)
    simulate(app, "clogp", config)
    # Every column was processed exactly once by a real processor.
    assert all(0 <= owner < 4 for owner in app.column_owner)
    # The dynamic queue drained completely.
    assert app._head == app.n


def test_cholesky_uses_multiple_processors():
    config = tiny_config(4)
    app = tiny_app("cholesky", 4)
    simulate(app, "target", config)
    assert len(set(app.column_owner)) > 1


def test_cholesky_schedule_differs_across_machines():
    """Dynamic behaviour: the winning processors depend on timing."""
    owners = {}
    for machine in ("target", "logp"):
        config = tiny_config(4)
        app = tiny_app("cholesky", 4)
        simulate(app, machine, config)
        owners[machine] = tuple(app.column_owner)
    # Not guaranteed in principle, but with 48 columns over 4 procs the
    # schedules of two very different machines virtually always differ;
    # this guards against accidentally static scheduling.
    assert owners["target"] != owners["logp"]


# -- runner ---------------------------------------------------------------------------------------


def test_simulate_full_returns_machine():
    config = tiny_config(2)
    result, machine = simulate_full(tiny_app("fft", 2), "target", config)
    assert machine.fabric.messages == result.messages
    assert result.nprocs == 2


def test_run_result_fields():
    config = tiny_config(2, "mesh")
    result = simulate(tiny_app("is", 2), "clogp", config)
    assert result.app == "is"
    assert result.machine == "clogp"
    assert result.topology == "mesh"
    assert result.total_ns > 0
    assert len(result.buckets) == 2
    assert result.wall_seconds > 0
    assert "is" in result.summary()
