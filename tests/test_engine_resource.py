"""FIFO resources (links, directory serialization points)."""

import pytest

from repro.engine import Resource, Simulator
from repro.errors import SimulationError


def test_immediate_grant_when_free():
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def proc():
        grant = resource.request()
        yield grant
        assert sim.now == 0
        resource.release()

    sim.spawn(proc())
    sim.run()
    assert resource.in_use == 0


def test_capacity_enforced():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    grant_times = []

    def proc(tag):
        yield resource.request()
        grant_times.append((tag, sim.now))
        yield sim.timeout(10)
        resource.release()

    for tag in range(4):
        sim.spawn(proc(tag))
    sim.run()
    assert grant_times == [(0, 0), (1, 0), (2, 10), (3, 10)]


def test_fifo_order():
    sim = Simulator()
    resource = Resource(sim)
    order = []

    def holder():
        yield resource.request()
        yield sim.timeout(100)
        resource.release()

    def waiter(tag, arrival):
        yield sim.timeout(arrival)
        yield resource.request()
        order.append(tag)
        resource.release()

    sim.spawn(holder())
    sim.spawn(waiter("late", 20))
    sim.spawn(waiter("early", 10))
    sim.run()
    # "early" arrived at t=10, before "late" at t=20.
    assert order == ["early", "late"]


def test_wait_time_reported_in_grant_value():
    sim = Simulator()
    resource = Resource(sim)

    def holder():
        yield resource.request()
        yield sim.timeout(50)
        resource.release()

    waited = []

    def waiter():
        yield sim.timeout(10)
        grant = resource.request()
        value = yield grant
        waited.append(value)
        resource.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert waited == [40]
    assert resource.total_wait_ns == 40


def test_release_when_idle_is_an_error():
    sim = Simulator()
    resource = Resource(sim)
    with pytest.raises(SimulationError):
        resource.release()


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_queue_length_and_available():
    sim = Simulator()
    resource = Resource(sim)
    assert resource.available

    def holder():
        yield resource.request()
        yield sim.timeout(100)
        resource.release()

    def waiter():
        yield sim.timeout(1)
        yield resource.request()
        resource.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run(until=2)
    assert not resource.available
    assert resource.queue_length == 1
    sim.run()
    assert resource.queue_length == 0


def test_grant_counter():
    sim = Simulator()
    resource = Resource(sim)

    def proc():
        for _ in range(3):
            yield resource.request()
            resource.release()

    sim.spawn(proc())
    sim.run()
    assert resource.grants == 3
