"""Fault injection, reliable delivery, and the engine watchdog."""

import pytest

from repro import (
    ConfigError,
    FaultConfig,
    LinkFailure,
    NodeStall,
    RetryLimitError,
    SystemConfig,
    WatchdogError,
    make_app,
    simulate,
)
from repro.engine.core import Simulator
from repro.engine.rng import FAULT_STREAM, RandomStreams
from repro.faults.injector import FaultInjector, make_injector
from repro.faults.reliable import RetryPolicy

ALL_MACHINES = ("target", "logp", "clogp", "ideal")


def _run(machine, fault=None, seed=7, app="fft", nprocs=4, **app_kw):
    app_kw.setdefault("points", 256)
    config = SystemConfig(
        processors=nprocs, seed=seed,
        fault=fault if fault is not None else FaultConfig(),
    )
    return simulate(make_app(app, nprocs, **app_kw), machine, config)


def _comparable(result):
    data = result.to_dict()
    data.pop("wall_seconds")  # host timing noise
    return data


# -- configuration ----------------------------------------------------------------


def test_fault_config_validation():
    with pytest.raises(ConfigError):
        FaultConfig(drop_rate=1.5)
    with pytest.raises(ConfigError):
        FaultConfig(drop_rate=0.6, corrupt_rate=0.6)
    with pytest.raises(ConfigError):
        FaultConfig(backoff=0.5)
    with pytest.raises(ConfigError):
        LinkFailure(0, 1, 100, 100)
    with pytest.raises(ConfigError):
        NodeStall(0, -5, 10)


def test_policy_knobs_alone_do_not_enable():
    assert not FaultConfig().enabled
    assert not FaultConfig(retry_timeout_ns=1, max_retries=0, seed=9).enabled
    assert FaultConfig(drop_rate=0.01).enabled
    assert FaultConfig(link_failures=(LinkFailure(0, 1, 0, 10),)).enabled
    assert FaultConfig(node_stalls=(NodeStall(2, 0, 10),)).enabled


def test_make_injector_is_none_when_inert():
    streams = RandomStreams(1)
    assert make_injector(FaultConfig(), streams) is None
    assert make_injector(None, streams) is None
    assert make_injector(FaultConfig(drop_rate=0.1), streams) is not None


def test_config_rejects_non_fault_config():
    with pytest.raises(ConfigError):
        SystemConfig(fault="drop everything")


# -- satellite 1: dedicated RNG stream ----------------------------------------------


def test_fault_stream_is_independent_of_app_streams():
    streams = RandomStreams(42)
    before = streams.stream("app", 0).random(4).tolist()
    # Drawing from the fault stream must not perturb app streams.
    streams = RandomStreams(42)
    streams.fault_stream().random(1000)
    after = streams.stream("app", 0).random(4).tolist()
    assert before == after


def test_fault_stream_is_deterministic():
    a = RandomStreams(42).fault_stream().random(8).tolist()
    b = RandomStreams(42).fault_stream().random(8).tolist()
    assert a == b
    assert FAULT_STREAM.startswith("__")


@pytest.mark.parametrize("machine", ALL_MACHINES)
def test_zero_rate_fault_config_is_bit_identical(machine):
    """A config with every rate at zero must not perturb the run at all,
    even with non-default policy knobs (satellite 1 acceptance)."""
    plain = _run(machine)
    inert = _run(machine, FaultConfig(retry_timeout_ns=5_000, max_retries=3,
                                      backoff=4.0, seed=99))
    assert _comparable(plain) == _comparable(inert)
    assert all(b.retry_ns == 0 for b in plain.buckets)


# -- injector verdicts --------------------------------------------------------------


def test_injector_rates_are_respected():
    fault = FaultConfig(drop_rate=0.25, corrupt_rate=0.25, delay_rate=0.25)
    injector = FaultInjector(fault, RandomStreams(3))
    n = 4000
    for _ in range(n):
        injector.fate(0, 1, 0)
    assert injector.dropped == pytest.approx(n * 0.25, rel=0.15)
    assert injector.corrupted == pytest.approx(n * 0.25, rel=0.15)
    assert injector.delayed == pytest.approx(n * 0.25, rel=0.15)


def test_window_only_config_consumes_no_randomness():
    fault = FaultConfig(link_failures=(LinkFailure(0, 1, 0, 1000),))
    injector = FaultInjector(fault, RandomStreams(3))
    state = injector._rng.bit_generator.state
    assert injector.fate(2, 3, 500).delivered
    assert injector._rng.bit_generator.state == state


def test_link_window_drops_on_route():
    from repro.network import make_topology

    fault = FaultConfig(link_failures=(LinkFailure(0, 1, 0, 1000),))
    topology = make_topology("full", 4)
    injector = FaultInjector(fault, RandomStreams(3), topology=topology)
    assert not injector.fate(0, 1, 0, check_route=True).delivered
    assert injector.fate(0, 1, 1000, check_route=True).delivered  # window over
    assert injector.fate(2, 3, 0, check_route=True).delivered  # other link


def test_node_stall_window():
    fault = FaultConfig(node_stalls=(NodeStall(1, 100, 400),))
    injector = FaultInjector(fault, RandomStreams(3))
    assert injector.stall_ns(1, 50) == 0
    assert injector.stall_ns(1, 150) == 250  # frozen until 400
    assert injector.stall_ns(1, 400) == 0
    assert injector.stall_ns(0, 150) == 0


def test_retry_policy_backoff():
    policy = RetryPolicy.from_fault(FaultConfig(retry_timeout_ns=1000,
                                                backoff=2.0, max_retries=5))
    assert policy.backoff_ns(1) == 1000
    assert policy.backoff_ns(2) == 2000
    assert policy.backoff_ns(4) == 8000


# -- end-to-end fault runs ----------------------------------------------------------


@pytest.mark.parametrize("machine", ("target", "clogp"))
def test_nonzero_drop_completes_with_retry_overhead(machine):
    result = _run(machine, FaultConfig(drop_rate=0.02, retry_timeout_ns=5_000))
    assert result.verified
    total_retry = sum(b.retry_ns for b in result.buckets)
    assert total_retry > 0
    assert result.mean_retry_us > 0
    assert result.metric("retry") == result.mean_retry_us
    # Buckets still partition each processor's time.
    baseline = _run(machine)
    assert result.total_ns > baseline.total_ns


@pytest.mark.parametrize("machine", ("target", "logp", "clogp"))
def test_faulty_runs_are_deterministic(machine):
    fault = FaultConfig(drop_rate=0.02, delay_rate=0.02,
                        retry_timeout_ns=5_000)
    a = _run(machine, fault)
    b = _run(machine, fault)
    assert _comparable(a) == _comparable(b)


def test_fault_seed_decouples_from_master_seed():
    fault = FaultConfig(drop_rate=0.05, seed=1234, retry_timeout_ns=5_000)
    a = _run("clogp", fault, seed=7)
    b = _run("clogp", fault, seed=7)
    assert _comparable(a) == _comparable(b)


@pytest.mark.parametrize("machine", ("target", "clogp"))
def test_retry_cap_raises_typed_error(machine):
    """Total loss must surface as RetryLimitError, not a hang."""
    fault = FaultConfig(drop_rate=1.0, max_retries=2, retry_timeout_ns=1_000)
    with pytest.raises(RetryLimitError) as info:
        _run(machine, fault)
    assert info.value.attempts == 3  # initial try + 2 retries
    assert "undeliverable" in str(info.value)


def test_transient_link_failure_is_recovered():
    """Messages during the window are retried past it; the run completes."""
    fault = FaultConfig(
        link_failures=(LinkFailure(0, 1, 0, 50_000),),
        retry_timeout_ns=30_000,
        max_retries=10,
    )
    result = _run("clogp", fault)
    assert result.verified


def test_node_stall_slows_target_run():
    fault = FaultConfig(node_stalls=(NodeStall(0, 0, 40_000),))
    stalled = _run("target", fault)
    baseline = _run("target")
    assert stalled.verified
    assert stalled.total_ns > baseline.total_ns


# -- watchdog -----------------------------------------------------------------------


def test_watchdog_raises_with_diagnostics():
    sim = Simulator()

    def ticker():
        while True:
            yield sim.timeout(10)

    sim.spawn(ticker(), name="ticker")
    with pytest.raises(WatchdogError) as info:
        sim.run(max_events=100)
    assert info.value.events == 100
    assert info.value.blocked == 1
    assert "watchdog" in str(info.value)


def test_watchdog_not_triggered_by_finite_run():
    sim = Simulator()

    def once():
        yield sim.timeout(10)
        return "done"

    process = sim.spawn(once())
    sim.run(max_events=1_000_000)
    assert process.value == "done"


def test_until_ns_alias():
    sim = Simulator()

    def ticker():
        while True:
            yield sim.timeout(10)

    sim.spawn(ticker())
    assert sim.run(until_ns=55) == 55
    with pytest.raises(Exception):
        sim.run(until=10, until_ns=10)


def test_simulate_forwards_max_events():
    fault = FaultConfig(drop_rate=0.02, retry_timeout_ns=5_000)
    config = SystemConfig(processors=4, fault=fault)
    with pytest.raises(WatchdogError):
        simulate(make_app("fft", 4, points=256), "target", config,
                 max_events=50)


# -- ARQ edge cases -----------------------------------------------------------------


class _ScriptedFabric:
    """Fabric stand-in whose transmits follow a scripted fate sequence."""

    def __init__(self, sim, script):
        self.sim = sim
        self.script = list(script)

    def transmit(self, message):
        delivered = self.script.pop(0)
        yield self.sim.timeout(10)
        from repro.network.fabric import TransferResult
        return TransferResult(
            latency_ns=10, contention_ns=0, delivered=delivered
        )


def _drive_reliable(script, max_retries=8, checkers=None):
    from repro.faults.reliable import ReliableTransport
    from repro.network.message import Message

    sim = Simulator()
    fabric = _ScriptedFabric(sim, script)
    transport = ReliableTransport(
        fabric, injector=None,
        policy=RetryPolicy(timeout_ns=100, max_retries=max_retries,
                           backoff=2.0),
        checkers=checkers,
    )
    box = {}

    def proc():
        box["result"] = yield from transport.transmit(Message(0, 1, 32, "mp"))

    sim.spawn(proc())
    sim.run()
    return transport, box["result"]


def test_arq_duplicate_suppression_under_repeated_ack_loss():
    # data ok / ack lost, twice over -- the receiver must discard both
    # retransmitted copies before the final ack lands.
    script = [True, False, True, False, True, True]
    transport, result = _drive_reliable(script)
    assert transport.duplicates_suppressed == 2
    assert transport.acks_lost == 2
    assert transport.retransmissions == 2
    assert result.attempts == 3


def test_arq_exactly_once_checker_sees_one_accepted_delivery():
    from repro.checkers import CheckerSet, ExactlyOnceChecker

    checker = ExactlyOnceChecker()
    checkers = CheckerSet("basic", [checker])
    transport, _result = _drive_reliable(
        [True, False, True, True], checkers=checkers
    )
    assert transport.duplicates_suppressed == 1
    assert checker.duplicates == 1
    assert checker._accepted[(0, 1)] == 1
    assert checker._completed[(0, 1)] == 1

    class _M:
        pass

    machine = _M()
    machine.sim = Simulator()
    checker.finalize(machine)  # balanced channels: must not raise


def test_arq_retry_limit_error_at_exact_cap():
    # max_retries=3 tolerates exactly 3 failed attempts: a success on
    # the 4th transmission completes ...
    transport, result = _drive_reliable(
        [False, False, False, True, True], max_retries=3
    )
    assert result.attempts == 4
    # ... while a 4th consecutive failure exhausts the cap.
    with pytest.raises(RetryLimitError):
        _drive_reliable([False, False, False, False], max_retries=3)


@pytest.mark.parametrize("machine", ALL_MACHINES)
def test_retry_bucket_zero_on_fault_free_runs(machine):
    result = _run(machine)
    assert all(b.retry_ns == 0 for b in result.buckets)
    assert result.total_ns == max(b.total_ns for b in result.buckets)
