"""Network traffic statistics (communication-locality measurement)."""


from repro import SystemConfig
from repro.apps import make_app
from repro.core.runner import simulate_full
from repro.engine import Simulator
from repro.network import (
    Fabric,
    Message,
    bisection_cut,
    collect_stats,
    make_topology,
    stats_report,
)


def run_messages(topology_name, nprocs, pairs):
    sim = Simulator()
    topology = make_topology(topology_name, nprocs)
    fabric = Fabric(sim, topology, 50)

    def proc(src, dst):
        yield from fabric.transmit(Message(src, dst, 32))

    for src, dst in pairs:
        sim.spawn(proc(src, dst))
    sim.run()
    return fabric


# -- bisection cut -------------------------------------------------------------------


def test_cube_cut_size_matches_bisection_links():
    topology = make_topology("cube", 16)
    cut = bisection_cut(topology)
    # Both directions of each crossing edge.
    assert len(cut) == 2 * topology.bisection_links()


def test_mesh_cut_is_the_column_split():
    topology = make_topology("mesh", 16)  # 4x4
    cut = bisection_cut(topology)
    assert len(cut) == 2 * topology.bisection_links()
    for src, dst in cut:
        _, col_src = topology.coordinates(src)
        _, col_dst = topology.coordinates(dst)
        assert {col_src, col_dst} == {1, 2}


def test_full_cut():
    topology = make_topology("full", 8)
    cut = bisection_cut(topology)
    assert len(cut) == 2 * topology.bisection_links()


# -- statistics ---------------------------------------------------------------------------


def test_local_traffic_has_low_bisection_fraction():
    # 4x4 mesh: traffic between horizontal neighbours in the left half.
    fabric = run_messages("mesh", 16, [(0, 1), (4, 5), (8, 9)] * 5)
    stats = collect_stats(fabric)
    assert stats.bisection_fraction == 0.0
    assert stats.mean_hops == 1.0
    assert stats.locality_factor < 1.0


def test_crossing_traffic_has_high_bisection_fraction():
    fabric = run_messages("mesh", 16, [(0, 3), (4, 7)] * 5)
    stats = collect_stats(fabric)
    assert stats.bisection_fraction == 1.0
    assert stats.mean_hops == 3.0


def test_stats_counts():
    fabric = run_messages("cube", 8, [(0, 7), (1, 2)])
    stats = collect_stats(fabric)
    assert stats.messages == 2
    assert stats.bytes_transported == 64
    assert stats.bisection_messages == 1  # only 0->7 crosses dim 2
    assert stats.hottest_links


def test_empty_fabric_stats():
    sim = Simulator()
    fabric = Fabric(sim, make_topology("full", 4), 50)
    stats = collect_stats(fabric)
    assert stats.messages == 0
    assert stats.bisection_fraction == 0.0


def test_report_renders():
    fabric = run_messages("mesh", 16, [(0, 15)])
    text = stats_report(collect_stats(fabric))
    assert "bisection crossings" in text
    assert "locality factor" in text


def test_real_run_stats_reveal_sync_hotspot():
    """Even nearest-neighbour Jacobi shows near-uniform traffic on the
    target: the centralized barrier's lock/flag words (homed round-robin)
    dominate the message count -- an insight the paper's communication-
    locality discussion glosses over and this tool makes visible."""
    result, machine = simulate_full(
        make_app("jacobi", 16, n=1_024, sweeps=2),
        "target",
        SystemConfig(processors=16, topology="mesh"),
    )
    stats = collect_stats(machine.fabric)
    assert result.verified
    assert 0.8 < stats.locality_factor < 1.3
    assert stats.messages == machine.fabric.messages
