"""Trace recording and trace-driven replay."""

import pytest

from repro import simulate
from repro.core import ops
from repro.errors import ReproError
from repro.trace import (
    Trace,
    TraceApplication,
    load_trace,
    record_trace,
    save_trace,
)
from repro.trace.tracefile import deserialize_op, serialize_op

from tests.conftest import ALL_APPS, tiny_app, tiny_config


# -- op (de)serialization -----------------------------------------------------------


ALL_OPS = [
    ops.Read(100),
    ops.Write(200),
    ops.ReadRange(300, 8, 4),
    ops.WriteRange(400, 2, 8),
    ops.ReadMany([1, 5, 9]),
    ops.WriteMany([2, 6]),
    ops.Compute(750),
    ops.Lock(3),
    ops.Unlock(3),
    ops.Barrier(0),
    ops.SetFlag(500, 7),
    ops.WaitFlag(500, 7, "eq"),
]


@pytest.mark.parametrize("op", ALL_OPS, ids=lambda o: type(o).__name__)
def test_op_roundtrip(op):
    restored = deserialize_op(serialize_op(op))
    assert type(restored) is type(op)
    assert repr(restored) == repr(op)


def test_unknown_tag_rejected():
    with pytest.raises(ReproError):
        deserialize_op(["zz", 1])


# -- recording -----------------------------------------------------------------------


def test_recording_preserves_the_run():
    config = tiny_config(4, "cube")
    result, trace = record_trace(tiny_app("fft", 4), "clogp", config)
    assert result.verified
    assert trace.app == "fft"
    assert trace.nprocs == 4
    assert trace.recorded_on == "clogp"
    assert trace.total_operations > 0
    assert len(trace.streams) == 4


def test_recording_excludes_machine_sync_words():
    config = tiny_config(4)
    _result, trace = record_trace(tiny_app("is", 4), "clogp", config)
    assert all(not spec[0].startswith("__sync_") for spec in trace.regions)


# -- replay ---------------------------------------------------------------------------


def test_replay_on_same_machine_is_exact():
    config = tiny_config(4, "cube")
    original, trace = record_trace(tiny_app("fft", 4), "clogp", config)
    replayed = simulate(
        TraceApplication(trace), "clogp", tiny_config(4, "cube")
    )
    assert replayed.total_ns == original.total_ns
    assert replayed.messages == original.messages
    assert replayed.verified


@pytest.mark.parametrize("app_name", ALL_APPS)
def test_replay_runs_on_other_machines(app_name):
    """Cross-machine replay: the trace-driven approximation."""
    config = tiny_config(4)
    _original, trace = record_trace(tiny_app(app_name, 4), "clogp", config)
    replayed = simulate(TraceApplication(trace), "target", tiny_config(4))
    assert replayed.verified
    assert replayed.total_ns > 0


def test_replay_addresses_resolve_identically():
    """The replayed address space reproduces the recorded layout."""
    config = tiny_config(4)
    _result, trace = record_trace(tiny_app("ep", 4), "ideal", config)
    # Rebuild a space through a replay setup and check region bases by
    # running on a machine with invariant checking.
    replayed = simulate(
        TraceApplication(trace), "clogp", tiny_config(4),
        check_invariants=True,
    )
    assert replayed.verified


def test_replay_wrong_pid_rejected():
    trace = Trace(app="x", nprocs=2, recorded_on="ideal",
                  regions=[], streams=[[], []])
    app = TraceApplication(trace)
    with pytest.raises(ReproError):
        list(app.proc_main(5))


# -- persistence -------------------------------------------------------------------------


def test_save_and_load_roundtrip(tmp_path):
    config = tiny_config(2)
    _result, trace = record_trace(tiny_app("is", 2), "clogp", config)
    path = tmp_path / "trace.json"
    save_trace(trace, str(path))
    loaded = load_trace(str(path))
    assert loaded.app == trace.app
    assert loaded.streams == trace.streams
    assert loaded.regions == trace.regions
    # The loaded trace replays identically to the in-memory one.
    a = simulate(TraceApplication(trace), "clogp", tiny_config(2))
    b = simulate(TraceApplication(loaded), "clogp", tiny_config(2))
    assert a.total_ns == b.total_ns


def test_format_version_checked():
    with pytest.raises(ReproError):
        Trace.from_json({"format": 99})


def test_trace_operations_accessor():
    config = tiny_config(2)
    _result, trace = record_trace(tiny_app("fft", 2), "ideal", config)
    operations = trace.operations(0)
    assert operations
    assert all(isinstance(op, ops.Op) for op in operations)
