"""The paper's headline results, asserted at reduced scale.

Each test corresponds to a claim in Sections 6-7 of the paper; the
benchmark harness regenerates the full figures, these tests pin the
qualitative shapes so a regression cannot silently break the
reproduction.
"""


from repro import SystemConfig, simulate
from repro.apps import make_app
from tests.conftest import TINY_PARAMS


def run(app_name, machine, nprocs=8, topology="full", **config_overrides):
    config = SystemConfig(processors=nprocs, topology=topology,
                          **config_overrides)
    app = make_app(app_name, nprocs, **TINY_PARAMS[app_name])
    return simulate(app, machine, config)


# -- Section 6.1: the L abstraction ------------------------------------------------


def test_fig1_fft_logp_latency_about_4x():
    """8-byte items, 32-byte blocks: LogP pays ~4x the latency overhead.

    Synchronization polling adds more on top, so we assert >= 3x and
    that CLogP stays close to the target.
    """
    target = run("fft", "target").mean_latency_us
    clogp = run("fft", "clogp").mean_latency_us
    logp = run("fft", "logp").mean_latency_us
    assert logp >= 3.0 * clogp
    assert 0.5 * target <= clogp <= 2.0 * target


def test_fig3_ep_logp_latency_explodes_from_polling():
    """EP barely communicates, yet LogP's condition-variable polling
    shows up as a large latency overhead."""
    target = run("ep", "target").mean_latency_us
    logp = run("ep", "logp").mean_latency_us
    assert logp > 5.0 * max(target, 1.0)


def test_figs_1_to_5_clogp_latency_tracks_target_for_all_apps():
    for app_name in TINY_PARAMS:
        target = run(app_name, "target").mean_latency_us
        clogp = run(app_name, "clogp").mean_latency_us
        if target < 1.0:
            continue
        ratio = clogp / target
        assert 0.4 <= ratio <= 2.5, (app_name, ratio)


# -- Section 6.1: the g abstraction -----------------------------------------------------


def test_fig6_7_contention_pessimism_grows_with_lower_connectivity():
    """IS: CLogP's contention overshoot is far larger on the mesh."""
    def overshoot(topology):
        target = run("is", "target", topology=topology).mean_contention_us
        clogp = run("is", "clogp", topology=topology).mean_contention_us
        assert clogp > target  # pessimistic on both networks
        return clogp - target

    assert overshoot("mesh") > 2.0 * overshoot("full")


def test_fig10_ep_contention_disparity():
    """EP's communication locality makes bisection-derived g very wrong."""
    target = run("ep", "target", topology="mesh").mean_contention_us
    clogp = run("ep", "clogp", topology="mesh").mean_contention_us
    assert clogp > 3.0 * max(target, 0.1)


# -- Section 6.2: locality ------------------------------------------------------------------


def test_fig12_ep_execution_agrees_everywhere():
    def run_ep(machine):
        # A compute-dominated EP size (the tiny preset communicates too
        # much, relatively, to show the paper's Fig. 12 agreement).
        config = SystemConfig(processors=8, topology="full")
        app = make_app("ep", 8, pairs=16_384)
        return simulate(app, machine, config).total_us

    times = {m: run_ep(m) for m in ("target", "clogp", "logp")}
    # Computation dominates: within ~25% of each other.
    low, high = min(times.values()), max(times.values())
    assert high <= 1.25 * low, times


def test_fig14_16_logp_execution_diverges_for_comm_heavy_apps():
    for app_name in ("is", "cg", "cholesky"):
        target = run(app_name, "target").total_us
        clogp = run(app_name, "clogp").total_us
        logp = run(app_name, "logp").total_us
        assert logp > 1.5 * target, app_name
        assert clogp < logp, app_name


def test_fig17_19_mesh_amplifies_logp_divergence():
    """CG: the LogP/target execution gap grows from full to mesh."""
    gap_full = (run("cg", "logp", topology="full").total_us
                / run("cg", "target", topology="full").total_us)
    gap_mesh = (run("cg", "logp", topology="mesh").total_us
                / run("cg", "target", topology="mesh").total_us)
    assert gap_mesh > gap_full


def test_fig19_logp_mesh_contention_explodes():
    target = run("cg", "target", topology="mesh").mean_contention_us
    logp = run("cg", "logp", topology="mesh").mean_contention_us
    assert logp > 5.0 * max(target, 1.0)


# -- Section 7: speed of simulation -----------------------------------------------------------


def test_clogp_is_cheaper_to_simulate_than_target():
    """The paper's 25-30% simulation-speed win, in engine events."""
    target = run("cholesky", "target").sim_events
    clogp = run("cholesky", "clogp").sim_events
    assert clogp < 0.75 * target


def test_logp_is_more_expensive_to_simulate_than_clogp():
    """Ignoring locality turns cache hits into simulated events."""
    clogp = run("cg", "clogp").sim_events
    logp = run("cg", "logp").sim_events
    assert logp > clogp


# -- Section 7: the g-gap relaxation -----------------------------------------------------------


def test_relaxed_g_reduces_clogp_contention_toward_target():
    strict = run("fft", "clogp", topology="cube").mean_contention_us
    relaxed = run("fft", "clogp", topology="cube",
                  g_per_event_type=True).mean_contention_us
    target = run("fft", "target", topology="cube").mean_contention_us
    assert relaxed < strict
    assert abs(relaxed - target) < abs(strict - target)
